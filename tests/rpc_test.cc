// Tests for the RPC substrate: wire format, dispatch, typed stubs, latency model,
// partitions — plus the name service bound over RPC.
#include <gtest/gtest.h>

#include "src/nameserver/name_service_rpc.h"
#include "src/rpc/client.h"
#include "src/rpc/message.h"
#include "src/rpc/server.h"
#include "src/rpc/transport.h"
#include "src/storage/sim_env.h"

namespace sdb::rpc {
namespace {

TEST(RpcMessageTest, RequestRoundTrip) {
  Request request;
  request.call_id = 77;
  request.service = "Svc";
  request.method = "Do";
  request.payload = {1, 2, 3};
  Result<Request> back = DecodeRequest(AsSpan(EncodeRequest(request)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->call_id, 77u);
  EXPECT_EQ(back->service, "Svc");
  EXPECT_EQ(back->method, "Do");
  EXPECT_EQ(back->payload, (Bytes{1, 2, 3}));
}

TEST(RpcMessageTest, OkResponseRoundTrip) {
  Response response;
  response.call_id = 9;
  response.payload = {9, 8};
  Result<Response> back = DecodeResponse(AsSpan(EncodeResponse(response)));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->status.ok());
  EXPECT_EQ(back->payload, (Bytes{9, 8}));
}

TEST(RpcMessageTest, ErrorResponseCarriesStatus) {
  Response response;
  response.call_id = 3;
  response.status = NotFoundError("no such thing");
  Result<Response> back = DecodeResponse(AsSpan(EncodeResponse(response)));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->status.Is(ErrorCode::kNotFound));
  EXPECT_EQ(back->status.message(), "no such thing");
}

TEST(RpcMessageTest, TruncatedMessagesRejected) {
  Request request;
  request.service = "S";
  request.method = "M";
  Bytes encoded = EncodeRequest(request);
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    ByteSpan truncated = AsSpan(encoded).subspan(0, cut);
    EXPECT_FALSE(DecodeRequest(truncated).ok()) << "cut at " << cut;
  }
}

struct EchoRequest {
  std::string text;
  std::int32_t repeat = 0;
  SDB_PICKLE_FIELDS(EchoRequest, text, repeat)
};
struct EchoResponse {
  std::string text;
  SDB_PICKLE_FIELDS(EchoResponse, text)
};

class RpcStackTest : public ::testing::Test {
 protected:
  RpcStackTest() {
    RegisterMethod<EchoRequest, EchoResponse>(
        server_, "Echo", "Echo", [](const EchoRequest& request) -> Result<EchoResponse> {
          if (request.repeat < 0) {
            return InvalidArgumentError("negative repeat");
          }
          std::string out;
          for (int i = 0; i < request.repeat; ++i) {
            out += request.text;
          }
          return EchoResponse{out};
        });
  }

  SimClock clock_;
  RpcServer server_;
};

TEST_F(RpcStackTest, TypedCallRoundTrip) {
  LoopbackChannel channel(server_, {&clock_, 8000});
  auto response =
      CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"ab", 3});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->text, "ababab");
}

TEST_F(RpcStackTest, ApplicationErrorsPropagate) {
  LoopbackChannel channel(server_, {&clock_, 8000});
  auto response =
      CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"x", -1});
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().Is(ErrorCode::kInvalidArgument));
}

TEST_F(RpcStackTest, UnknownMethodIsNotFound) {
  LoopbackChannel channel(server_, {&clock_, 8000});
  auto response =
      CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Missing", EchoRequest{});
  EXPECT_TRUE(response.status().Is(ErrorCode::kNotFound));
}

TEST_F(RpcStackTest, RoundTripChargesLatency) {
  LoopbackChannel channel(server_, {&clock_, 8000});
  Micros before = clock_.NowMicros();
  ASSERT_TRUE(
      (CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 1}))
          .ok());
  // The paper's ~8 ms round trip.
  EXPECT_EQ(clock_.NowMicros() - before, 8000);
}

TEST_F(RpcStackTest, DisconnectedChannelIsUnavailable) {
  LoopbackChannel channel(server_, {&clock_, 8000});
  channel.SetConnected(false);
  auto response =
      CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 1});
  EXPECT_TRUE(response.status().Is(ErrorCode::kUnavailable));
  channel.SetConnected(true);
  EXPECT_TRUE(
      (CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 1}))
          .ok());
}

TEST_F(RpcStackTest, DroppedResponseExecutesButReportsUnavailable) {
  // The half-open failure a real socket produces: the request is delivered and
  // EXECUTED, but the response never comes back. The caller must see the same
  // kUnavailable as a plain partition — and the server-side effect must stand.
  LoopbackChannel channel(server_, {&clock_, 8000});
  channel.SetDropResponses(true);
  auto dropped =
      CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 1});
  EXPECT_TRUE(dropped.status().Is(ErrorCode::kUnavailable)) << dropped.status();
  EXPECT_EQ(server_.dispatched(), 1u) << "the dropped call must still have executed";
  EXPECT_EQ(channel.dropped_responses(), 1u);

  // Indistinguishable from SetConnected(false) at the caller...
  channel.SetDropResponses(false);
  channel.SetConnected(false);
  auto partitioned =
      CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 1});
  EXPECT_EQ(partitioned.status().code(), dropped.status().code());
  // ...but THAT one never reached the server.
  EXPECT_EQ(server_.dispatched(), 1u);

  channel.SetConnected(true);
  EXPECT_TRUE(
      (CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 1}))
          .ok());
}

TEST_F(RpcStackTest, DispatchCountsCalls) {
  LoopbackChannel channel(server_, {&clock_, 0});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (CallMethod<EchoRequest, EchoResponse>(channel, "Echo", "Echo", EchoRequest{"a", 0}))
            .ok());
  }
  EXPECT_EQ(server_.dispatched(), 5u);
  EXPECT_EQ(channel.calls(), 5u);
}

TEST_F(RpcStackTest, GarbageRequestYieldsErrorResponse) {
  Bytes garbage{0xFF, 0xFF, 0xFF};
  Bytes response_bytes = server_.Dispatch(AsSpan(garbage));
  Result<Response> response = DecodeResponse(AsSpan(response_bytes));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->status.ok());
}

// --- the name service over RPC (the paper's client path) ---

class NameServiceRpcTest : public ::testing::Test {
 protected:
  NameServiceRpcTest() {
    SimEnvOptions env_options;
    env_ = std::make_unique<SimEnv>(env_options);
    ns::NameServerOptions options;
    options.db.vfs = &env_->fs();
    options.db.dir = "ns";
    options.db.clock = &env_->clock();
    options.cost = &env_->cost_model();
    options.replica_id = "server";
    server_ = *ns::NameServer::Open(options);
    RegisterNameService(rpc_server_, *server_);
    channel_ = std::make_unique<LoopbackChannel>(rpc_server_,
                                                 LoopbackOptions{&env_->clock(), 8000});
    client_ = std::make_unique<ns::NameServiceClient>(*channel_);
  }

  std::unique_ptr<SimEnv> env_;
  std::unique_ptr<ns::NameServer> server_;
  RpcServer rpc_server_;
  std::unique_ptr<LoopbackChannel> channel_;
  std::unique_ptr<ns::NameServiceClient> client_;
};

TEST_F(NameServiceRpcTest, RemoteSetAndLookup) {
  ASSERT_TRUE(client_->Set("host/gamma", "10.0.0.3").ok());
  auto value = client_->Lookup("host/gamma");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "10.0.0.3");
  auto labels = client_->List("host");
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<std::string>{"gamma"}));
}

TEST_F(NameServiceRpcTest, RemoteErrorsTravelBack) {
  EXPECT_TRUE(client_->Lookup("ghost").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(client_->Remove("ghost").Is(ErrorCode::kFailedPrecondition));
}

TEST_F(NameServiceRpcTest, RemoteEnquiryCostMatchesPaper) {
  ASSERT_TRUE(client_->Set("a/b/c", "v").ok());
  Micros before = env_->clock().NowMicros();
  ASSERT_TRUE(client_->Lookup("a/b/c").ok());
  double millis = static_cast<double>(env_->clock().NowMicros() - before) / 1000.0;
  // Paper: enquiry 5 ms + 8 ms network = 13 ms for remote clients.
  EXPECT_NEAR(millis, 13.0, 2.0);
}

TEST_F(NameServiceRpcTest, RemoteUpdateCostMatchesPaper) {
  ASSERT_TRUE(client_->Set("warm", "up").ok());
  Micros before = env_->clock().NowMicros();
  // Paper-scale update: a ~300-byte value on a three-component name, matching the
  // record size implied by the paper's 22 ms PickleWrite figure.
  ASSERT_TRUE(client_->Set("org/dept/member", std::string(300, 'v')).ok());
  double millis = static_cast<double>(env_->clock().NowMicros() - before) / 1000.0;
  // Paper: update 54 ms + 8 ms network = 62 ms.
  EXPECT_NEAR(millis, 62.0, 15.0);
}

TEST_F(NameServiceRpcTest, RemoteCompareAndSetAndExport) {
  ASSERT_TRUE(client_->Set("cfg/a", "1").ok());
  ASSERT_TRUE(client_->Set("cfg/b", "2").ok());

  EXPECT_TRUE(client_->CompareAndSet("cfg/a", "wrong", "x").Is(ErrorCode::kFailedPrecondition));
  ASSERT_TRUE(client_->CompareAndSet("cfg/a", "1", "1b").ok());
  EXPECT_EQ(*client_->Lookup("cfg/a"), "1b");

  auto bindings = *client_->Export("cfg");
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0], (std::pair<std::string, std::string>{"cfg/a", "1b"}));
  EXPECT_EQ(bindings[1], (std::pair<std::string, std::string>{"cfg/b", "2"}));
}

TEST_F(NameServiceRpcTest, ReplicationMethodsWork) {
  ASSERT_TRUE(client_->Set("k", "v").ok());
  auto vv = client_->GetVersionVector();
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ((*vv)["server"], 1u);
  auto updates = client_->UpdatesSince({});
  ASSERT_TRUE(updates.ok());
  ASSERT_EQ(updates->size(), 1u);
  EXPECT_EQ((*updates)[0].path, "k");
  auto state = client_->FullState();
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->empty());
}

}  // namespace
}  // namespace sdb::rpc
