// Tests for DirectoryService: the second complete application on the engine,
// featuring two-path rename transactions and full restart recovery.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/dirsvc/directory_service.h"
#include "src/dirsvc/directory_service_rpc.h"
#include "src/storage/sim_env.h"

namespace sdb::dirsvc {
namespace {

class DirectoryServiceTest : public ::testing::Test {
 protected:
  DirectoryServiceTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  std::unique_ptr<DirectoryService> OpenSvc() {
    DirectoryServiceOptions options;
    options.db.vfs = &env_->fs();
    options.db.dir = "dirsvc";
    options.db.clock = &env_->clock();
    auto svc = DirectoryService::Open(std::move(options));
    EXPECT_TRUE(svc.ok()) << svc.status();
    return std::move(*svc);
  }

  void CrashAndRecoverFs() {
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(DirectoryServiceTest, MkDirCreateStatReadDir) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("home", "root", 100).ok());
  ASSERT_TRUE(svc->MkDir("home/alice", "alice", 101).ok());
  ASSERT_TRUE(svc->CreateFile("home/alice/notes.txt", "alice", 1234, 102).ok());

  EntryAttrs attrs = *svc->Stat("home/alice/notes.txt");
  EXPECT_EQ(attrs.type, static_cast<std::uint8_t>(EntryType::kFile));
  EXPECT_EQ(attrs.size, 1234u);
  EXPECT_EQ(attrs.owner, "alice");

  EXPECT_EQ(*svc->ReadDir(""), (std::vector<std::string>{"home"}));
  EXPECT_EQ(*svc->ReadDir("home/alice"), (std::vector<std::string>{"notes.txt"}));
  EXPECT_EQ(svc->entry_count(), 3u);
}

TEST_F(DirectoryServiceTest, CreatePreconditions) {
  auto svc = OpenSvc();
  EXPECT_TRUE(svc->CreateFile("no/parent", "x", 0, 0).Is(ErrorCode::kNotFound));
  ASSERT_TRUE(svc->MkDir("d", "x", 0).ok());
  EXPECT_TRUE(svc->MkDir("d", "x", 0).Is(ErrorCode::kAlreadyExists));
  ASSERT_TRUE(svc->CreateFile("d/f", "x", 0, 0).ok());
  EXPECT_TRUE(svc->CreateFile("d/f", "x", 0, 0).Is(ErrorCode::kAlreadyExists));
}

TEST_F(DirectoryServiceTest, SetAttrsOnlyOnFiles) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("d", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("d/f", "x", 10, 1).ok());
  ASSERT_TRUE(svc->SetAttrs("d/f", 99, 2).ok());
  EXPECT_EQ(svc->Stat("d/f")->size, 99u);
  EXPECT_TRUE(svc->SetAttrs("d", 1, 1).Is(ErrorCode::kFailedPrecondition));
  EXPECT_TRUE(svc->SetAttrs("ghost", 1, 1).Is(ErrorCode::kNotFound));
}

TEST_F(DirectoryServiceTest, UnlinkRules) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("d", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("d/f", "x", 0, 0).ok());
  EXPECT_TRUE(svc->Unlink("d").Is(ErrorCode::kFailedPrecondition));  // not empty
  ASSERT_TRUE(svc->Unlink("d/f").ok());
  ASSERT_TRUE(svc->Unlink("d").ok());  // now empty
  EXPECT_FALSE(svc->Exists("d"));
  EXPECT_TRUE(svc->Unlink("d").Is(ErrorCode::kNotFound));
}

TEST_F(DirectoryServiceTest, RenameFile) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("a", "x", 0).ok());
  ASSERT_TRUE(svc->MkDir("b", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("a/f", "x", 7, 1).ok());
  ASSERT_TRUE(svc->Rename("a/f", "b/g").ok());
  EXPECT_FALSE(svc->Exists("a/f"));
  EXPECT_EQ(svc->Stat("b/g")->size, 7u);
}

TEST_F(DirectoryServiceTest, RenameMovesWholeSubtree) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("proj", "x", 0).ok());
  ASSERT_TRUE(svc->MkDir("proj/src", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("proj/src/main.cc", "x", 100, 1).ok());
  ASSERT_TRUE(svc->MkDir("archive", "x", 0).ok());

  ASSERT_TRUE(svc->Rename("proj", "archive/proj-v1").ok());
  EXPECT_FALSE(svc->Exists("proj"));
  EXPECT_EQ(svc->Stat("archive/proj-v1/src/main.cc")->size, 100u);
}

TEST_F(DirectoryServiceTest, RenamePreconditions) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("d", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("d/f", "x", 0, 0).ok());
  ASSERT_TRUE(svc->MkDir("full", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("full/occupant", "x", 0, 0).ok());

  EXPECT_TRUE(svc->Rename("ghost", "d/g").Is(ErrorCode::kNotFound));
  EXPECT_TRUE(svc->Rename("d/f", "no/parent/g").Is(ErrorCode::kNotFound));
  EXPECT_TRUE(svc->Rename("d/f", "full").Is(ErrorCode::kFailedPrecondition));  // type mismatch
  EXPECT_TRUE(svc->Rename("d", "full").Is(ErrorCode::kFailedPrecondition));    // not empty
  EXPECT_TRUE(svc->Rename("d", "d/inside").Is(ErrorCode::kFailedPrecondition));
  EXPECT_TRUE(svc->Rename("d", "d").Is(ErrorCode::kInvalidArgument));
  // Failed renames logged nothing; state intact.
  EXPECT_TRUE(svc->Exists("d/f"));
  EXPECT_TRUE(svc->Exists("full/occupant"));
}

TEST_F(DirectoryServiceTest, RenameReplacesFileAtomically) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("d", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("d/old", "x", 1, 1).ok());
  ASSERT_TRUE(svc->CreateFile("d/new", "x", 2, 2).ok());
  ASSERT_TRUE(svc->Rename("d/new", "d/old").ok());
  EXPECT_EQ(svc->Stat("d/old")->size, 2u);
  EXPECT_FALSE(svc->Exists("d/new"));
}

TEST_F(DirectoryServiceTest, RenameReplacesEmptyDirectory) {
  auto svc = OpenSvc();
  ASSERT_TRUE(svc->MkDir("src", "x", 0).ok());
  ASSERT_TRUE(svc->CreateFile("src/file", "x", 5, 0).ok());
  ASSERT_TRUE(svc->MkDir("empty", "x", 0).ok());
  ASSERT_TRUE(svc->Rename("src", "empty").ok());
  EXPECT_EQ(svc->Stat("empty/file")->size, 5u);
  EXPECT_FALSE(svc->Exists("src"));
}

TEST_F(DirectoryServiceTest, FullStateSurvivesRestart) {
  {
    auto svc = OpenSvc();
    ASSERT_TRUE(svc->MkDir("etc", "root", 1).ok());
    ASSERT_TRUE(svc->CreateFile("etc/passwd", "root", 2048, 2).ok());
    ASSERT_TRUE(svc->MkDir("home", "root", 3).ok());
    ASSERT_TRUE(svc->MkDir("home/bob", "bob", 4).ok());
    ASSERT_TRUE(svc->Checkpoint().ok());
    ASSERT_TRUE(svc->CreateFile("home/bob/todo", "bob", 64, 5).ok());
    ASSERT_TRUE(svc->Rename("home/bob", "home/robert").ok());
  }
  CrashAndRecoverFs();
  auto svc = OpenSvc();
  EXPECT_EQ(svc->Stat("etc/passwd")->size, 2048u);
  EXPECT_EQ(svc->Stat("home/robert/todo")->owner, "bob");
  EXPECT_FALSE(svc->Exists("home/bob"));
  EXPECT_EQ(svc->database().stats().restart.entries_replayed, 2u);
}

TEST_F(DirectoryServiceTest, TornRenameCommitIsAllOrNothing) {
  {
    auto svc = OpenSvc();
    ASSERT_TRUE(svc->MkDir("a", "x", 0).ok());
    ASSERT_TRUE(svc->MkDir("b", "x", 0).ok());
    ASSERT_TRUE(svc->CreateFile("a/f", "x", 9, 0).ok());
    CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(svc->Rename("a/f", "b/g").ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  auto svc = OpenSvc();
  // The rename either never happened (expected: commit torn) — and never half-happened.
  bool at_source = svc->Exists("a/f");
  bool at_target = svc->Exists("b/g");
  EXPECT_TRUE(at_source != at_target) << "rename half-applied";
  EXPECT_TRUE(at_source);  // the torn commit means it did not happen
}

TEST_F(DirectoryServiceTest, DeepTreesAndManyEntries) {
  auto svc = OpenSvc();
  std::string path;
  for (int depth = 0; depth < 20; ++depth) {
    path += (depth == 0 ? "" : "/");
    path += "level" + std::to_string(depth);
    ASSERT_TRUE(svc->MkDir(path, "x", 0).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(svc->CreateFile(path + "/file" + std::to_string(i), "x", i, 0).ok());
  }
  EXPECT_EQ(svc->ReadDir(path)->size(), 50u);
  ASSERT_TRUE(svc->Checkpoint().ok());
  CrashAndRecoverFs();
  auto reopened = OpenSvc();
  EXPECT_EQ(reopened->ReadDir(path)->size(), 50u);
  EXPECT_EQ(reopened->entry_count(), 70u);
}

TEST_F(DirectoryServiceTest, ServedOverRpc) {
  auto svc = OpenSvc();
  rpc::RpcServer rpc_server;
  RegisterDirectoryService(rpc_server, *svc);
  rpc::LoopbackChannel channel(rpc_server, rpc::LoopbackOptions{&env_->clock(), 8000});
  DirectoryServiceClient client(channel);

  ASSERT_TRUE(client.MkDir("remote", "net", 1).ok());
  ASSERT_TRUE(client.CreateFile("remote/file", "net", 77, 2).ok());
  ASSERT_TRUE(client.SetAttrs("remote/file", 99, 3).ok());
  EntryAttrs attrs = *client.Stat("remote/file");
  EXPECT_EQ(attrs.size, 99u);
  EXPECT_EQ(*client.ReadDir("remote"), (std::vector<std::string>{"file"}));
  ASSERT_TRUE(client.Rename("remote/file", "remote/renamed").ok());
  EXPECT_TRUE(client.Stat("remote/file").status().Is(ErrorCode::kNotFound));
  ASSERT_TRUE(client.Unlink("remote/renamed").ok());
  EXPECT_TRUE(client.Unlink("remote/renamed").Is(ErrorCode::kNotFound));
  // Errors travel with their codes intact.
  EXPECT_TRUE(client.MkDir("no/parent/here", "x", 0).Is(ErrorCode::kNotFound));
}

TEST_F(DirectoryServiceTest, RandomizedSoakAgainstFlatModel) {
  // Random MkDir/CreateFile/SetAttrs/Unlink/Rename against a flat path->attrs
  // reference model; verify full agreement live and after a crash-restart.
  Rng rng(31337);
  std::map<std::string, EntryAttrs> model;  // includes directories

  auto model_readdir_count = [&model](const std::string& dir) {
    std::size_t count = 0;
    std::string prefix = dir.empty() ? "" : dir + "/";
    for (const auto& [path, attrs] : model) {
      if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
          path.find('/', prefix.size()) == std::string::npos) {
        ++count;
      }
    }
    return count;
  };
  auto model_subtree_empty = [&model](const std::string& dir) {
    std::string prefix = dir + "/";
    for (const auto& [path, attrs] : model) {
      if (path.compare(0, prefix.size(), prefix) == 0) {
        return false;
      }
    }
    return true;
  };

  std::vector<std::string> dirs{""};  // known directories (as model paths; "" = root)
  {
    auto svc = OpenSvc();
    for (int op = 0; op < 600; ++op) {
      double dice = rng.NextDouble();
      const std::string& parent = dirs[rng.NextBelow(dirs.size())];
      std::string name = "n" + std::to_string(rng.NextBelow(40));
      std::string path = parent.empty() ? name : parent + "/" + name;
      bool in_model = model.count(path) != 0;

      if (dice < 0.25) {  // MkDir
        Status status = svc->MkDir(path, "soak", op);
        if (in_model) {
          EXPECT_TRUE(status.Is(ErrorCode::kAlreadyExists)) << path;
        } else {
          ASSERT_TRUE(status.ok()) << path << ": " << status;
          model[path] = EntryAttrs{static_cast<std::uint8_t>(EntryType::kDirectory), 0,
                                   static_cast<std::uint64_t>(op), "soak"};
          dirs.push_back(path);
        }
      } else if (dice < 0.55) {  // CreateFile
        Status status = svc->CreateFile(path, "soak", rng.NextBelow(1000), op);
        if (in_model) {
          EXPECT_TRUE(status.Is(ErrorCode::kAlreadyExists)) << path;
        } else {
          ASSERT_TRUE(status.ok()) << path << ": " << status;
          model[path] = *svc->Stat(path);
        }
      } else if (dice < 0.7) {  // SetAttrs
        Status status = svc->SetAttrs(path, rng.NextBelow(5000), op);
        bool is_file = in_model && model[path].type ==
                                       static_cast<std::uint8_t>(EntryType::kFile);
        if (is_file) {
          ASSERT_TRUE(status.ok()) << path;
          model[path] = *svc->Stat(path);
        } else {
          EXPECT_FALSE(status.ok()) << path;
        }
      } else if (dice < 0.85) {  // Unlink
        Status status = svc->Unlink(path);
        bool is_dir = in_model && model[path].type ==
                                      static_cast<std::uint8_t>(EntryType::kDirectory);
        bool removable = in_model && (!is_dir || model_subtree_empty(path));
        if (removable) {
          ASSERT_TRUE(status.ok()) << path;
          model.erase(path);
          if (is_dir) {
            dirs.erase(std::remove(dirs.begin(), dirs.end(), path), dirs.end());
          }
        } else {
          EXPECT_FALSE(status.ok()) << path;
        }
      } else {  // Rename to a fresh name in a random directory
        const std::string& to_parent = dirs[rng.NextBelow(dirs.size())];
        std::string to_name = "r" + std::to_string(op);
        std::string to_path = to_parent.empty() ? to_name : to_parent + "/" + to_name;
        Status status = svc->Rename(path, to_path);
        bool to_inside_from = to_path.compare(0, path.size() + 1, path + "/") == 0;
        if (!in_model || to_inside_from) {
          EXPECT_FALSE(status.ok()) << path << " -> " << to_path;
        } else {
          ASSERT_TRUE(status.ok()) << path << " -> " << to_path << ": " << status;
          // Rewrite the moved prefix in the model (files and whole subtrees).
          std::map<std::string, EntryAttrs> moved;
          std::string prefix = path + "/";
          for (auto it = model.begin(); it != model.end();) {
            if (it->first == path ||
                it->first.compare(0, prefix.size(), prefix) == 0) {
              std::string suffix = it->first.substr(path.size());
              moved[to_path + suffix] = it->second;
              it = model.erase(it);
            } else {
              ++it;
            }
          }
          model.insert(moved.begin(), moved.end());
          for (std::string& dir : dirs) {
            if (dir == path) {
              dir = to_path;
            } else if (dir.compare(0, prefix.size(), prefix) == 0) {
              dir = to_path + dir.substr(path.size());
            }
          }
        }
      }
    }

    // Live agreement: every model entry stats identically; counts match.
    for (const auto& [model_path, attrs] : model) {
      auto stat = svc->Stat(model_path);
      ASSERT_TRUE(stat.ok()) << model_path;
      EXPECT_EQ(*stat, attrs) << model_path;
    }
    EXPECT_EQ(svc->entry_count(), model.size());
    for (const std::string& dir : dirs) {
      EXPECT_EQ(svc->ReadDir(dir)->size(), model_readdir_count(dir)) << "'" << dir << "'";
    }
  }

  // And after a crash-restart.
  CrashAndRecoverFs();
  auto svc = OpenSvc();
  EXPECT_EQ(svc->entry_count(), model.size());
  for (const auto& [model_path, attrs] : model) {
    auto stat = svc->Stat(model_path);
    ASSERT_TRUE(stat.ok()) << model_path;
    EXPECT_EQ(*stat, attrs) << model_path;
  }
}

}  // namespace
}  // namespace sdb::dirsvc
