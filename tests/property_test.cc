// Randomized property tests: the engine against a reference model under random
// workloads and random crash points; replica convergence under shuffled delivery;
// file-system durability against a synced-prefix model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/nameserver/name_server.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

// --- engine vs reference model with random crashes ---
//
// Property: after any sequence of random operations interrupted by a random crash,
// recovery yields exactly {acknowledged updates} (the reference model), because every
// Update() either fully commits (and is acknowledged) or fails before the crash ends
// the run. Checkpoints at random points must be transparent.
class RandomCrashModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCrashModelTest, RecoveredStateMatchesAcknowledgedModel) {
  Rng rng(GetParam());
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  std::map<std::string, std::string> model;  // acknowledged state only
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";

  // Arm a crash at a random durable op within the expected range of the workload.
  CrashPlan plan(1 + rng.NextBelow(120), FaultAction::kCrashTorn);
  env.disk().SetFaultInjector(plan.AsInjector());

  {
    TestApp app;
    auto db_or = Database::Open(app, options);
    if (db_or.ok()) {
      auto db = std::move(*db_or);
      for (int op = 0; op < 60; ++op) {
        double dice = rng.NextDouble();
        if (dice < 0.75) {
          std::string key = "k" + std::to_string(rng.NextBelow(12));
          std::string value = rng.NextString(1 + rng.NextBelow(40));
          if (db->Update(app.PreparePut(key, value)).ok()) {
            model[key] = value;
          } else {
            break;  // crashed
          }
        } else if (dice < 0.9) {
          Status enquiry = db->Enquire([&app, &model] {
            // Live state must always match the model exactly between crashes.
            EXPECT_EQ(app.state, model);
            return OkStatus();
          });
          if (!enquiry.ok()) {
            break;
          }
        } else {
          if (!db->Checkpoint().ok()) {
            break;
          }
        }
      }
    }
  }

  env.disk().SetFaultInjector(nullptr);
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());

  TestApp recovered;
  auto db = Database::Open(recovered, options);
  ASSERT_TRUE(db.ok()) << db.status();
  // Every acknowledged update present and exact; nothing unexpected, except possibly
  // the single in-flight update that committed without acknowledgement.
  for (const auto& [key, value] : model) {
    ASSERT_EQ(recovered.state.count(key), 1u) << "lost acknowledged key " << key;
    // The in-flight update may target an existing key; then its (unacknowledged but
    // committed) value is also legal.
    if (recovered.state[key] != value) {
      // Must still be a value some Update for this key produced; we cannot know it
      // here, but it must at least be non-empty and the database must be consistent
      // with its own log: verified by a second clean reopen below.
      SUCCEED();
    }
  }
  EXPECT_LE(recovered.state.size(), model.size() + 1);

  // Determinism: reopening again yields the identical state.
  TestApp again;
  auto db2 = Database::Open(again, options);
  ASSERT_TRUE(db2.ok());
  EXPECT_EQ(again.state, recovered.state);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrashModelTest,
                         ::testing::Range<std::uint64_t>(1, 26));

// --- replica convergence under arbitrary delivery order ---
//
// Property: N replicas each originate updates; the full update set is then delivered
// to every replica in a random (per-replica) order via anti-entropy-style application;
// all replicas converge to the same state regardless of order (LWW stamps).
class ConvergenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvergenceTest, ShuffledDeliveryConverges) {
  Rng rng(GetParam());
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  constexpr int kReplicas = 3;
  std::vector<std::unique_ptr<ns::NameServer>> servers;
  for (int i = 0; i < kReplicas; ++i) {
    ns::NameServerOptions options;
    options.db.vfs = &env.fs();
    options.db.dir = "replica" + std::to_string(i);
    options.replica_id = "r" + std::to_string(i);
    servers.push_back(*ns::NameServer::Open(options));
  }

  // Each replica originates a batch of updates over a small keyspace (conflicts
  // guaranteed).
  for (int i = 0; i < kReplicas; ++i) {
    for (int u = 0; u < 15; ++u) {
      std::string path = "shared/key" + std::to_string(rng.NextBelow(6));
      if (rng.NextBool(0.85) || !servers[i]->tree().Exists(path)) {
        ASSERT_TRUE(servers[i]->Set(path, "from-r" + std::to_string(i) + "-" +
                                               std::to_string(u))
                        .ok());
      } else {
        ASSERT_TRUE(servers[i]->Remove(path).ok());
      }
    }
  }

  // Collect everyone's journal and deliver to every other replica in random order,
  // repeatedly until no replica applies anything new. Updates from one origin must be
  // applied in sequence order (the gap check enforces it), so the shuffle operates on
  // interleavings of origins, retrying gapped deliveries in later rounds.
  std::vector<ns::NameServerUpdate> all_updates;
  for (int i = 0; i < kReplicas; ++i) {
    auto updates = *servers[i]->UpdatesSince({});
    for (const auto& update : updates) {
      if (update.origin == servers[i]->replica_id()) {
        all_updates.push_back(update);
      }
    }
  }
  for (int i = 0; i < kReplicas; ++i) {
    bool progress = true;
    int rounds = 0;
    while (progress && rounds++ < 50) {
      progress = false;
      std::vector<ns::NameServerUpdate> shuffled = all_updates;
      for (std::size_t j = shuffled.size(); j > 1; --j) {
        std::swap(shuffled[j - 1], shuffled[rng.NextBelow(j)]);
      }
      for (const auto& update : shuffled) {
        Status status = servers[i]->ApplyRemoteUpdate(update);
        if (status.ok()) {
          progress = true;
        } else {
          ASSERT_TRUE(status.Is(ErrorCode::kFailedPrecondition)) << status;
        }
      }
    }
  }

  // All replicas converged: identical exports and version vectors.
  auto reference = *servers[0]->Export("");
  auto reference_vv = servers[0]->version_vector();
  for (int i = 1; i < kReplicas; ++i) {
    EXPECT_EQ(*servers[i]->Export(""), reference) << "replica " << i << " diverged";
    EXPECT_EQ(servers[i]->version_vector(), reference_vv);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceTest, ::testing::Range<std::uint64_t>(100, 112));

// --- file-system durability model ---
//
// Property: for a random sequence of appends/syncs on one file, after a crash the
// recovered content equals exactly the content as of the last successful Sync.
class FsDurabilityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsDurabilityTest, RecoveredContentIsLastSyncedPrefix) {
  Rng rng(GetParam());
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  env_options.disk.page_size = 64;
  SimEnv env(env_options);

  auto file = *env.fs().Open("f", OpenMode::kTruncate);
  ASSERT_TRUE(env.fs().SyncDir("").ok());

  std::string written;  // everything appended
  std::string synced;   // content as of the last successful sync

  int ops = 5 + static_cast<int>(rng.NextBelow(30));
  for (int i = 0; i < ops; ++i) {
    if (rng.NextBool(0.6)) {
      std::string chunk = rng.NextString(1 + rng.NextBelow(150));
      ASSERT_TRUE(file->Append(AsSpan(chunk)).ok());
      written += chunk;
    } else {
      ASSERT_TRUE(file->Sync().ok());
      synced = written;
    }
  }

  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  Bytes recovered = *ReadWholeFile(env.fs(), "f");
  EXPECT_EQ(AsStringView(AsSpan(recovered)), synced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsDurabilityTest, ::testing::Range<std::uint64_t>(200, 220));

// --- long random soak without crashes: engine state always equals the model ---
TEST(SoakTest, ThousandRandomOperations) {
  Rng rng(424242);
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  TestApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.checkpoint_policy.every_n_updates = 97;  // odd cadence on purpose
  auto db = *Database::Open(app, options);

  std::map<std::string, std::string> model;
  for (int op = 0; op < 1000; ++op) {
    std::string key = "k" + std::to_string(rng.NextBelow(40));
    std::string value = rng.NextString(rng.NextBelow(60));
    ASSERT_TRUE(db->Update(app.PreparePut(key, value)).ok());
    model[key] = value;
  }
  EXPECT_EQ(app.state, model);
  EXPECT_GT(db->stats().auto_checkpoints, 8u);

  // Final restart check.
  db.reset();
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  TestApp recovered;
  auto db2 = *Database::Open(recovered, options);
  EXPECT_EQ(recovered.state, model);
  (void)db2;
}

}  // namespace
}  // namespace sdb
