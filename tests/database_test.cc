// Tests for the Database engine: the paper's three-step update, checkpointing,
// recovery, policies, poisoning, state replacement, and hard-error fallback.
#include <gtest/gtest.h>

#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  DatabaseOptions Options() {
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = "db";
    options.clock = &env_->clock();
    return options;
  }

  Result<std::unique_ptr<Database>> OpenDb(TestApp& app, DatabaseOptions options) {
    return Database::Open(app, options);
  }

  // Simulates a process restart with power loss: everything not durable is gone.
  void CrashAndRecoverFs() {
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(DatabaseTest, FreshOpenCreatesGenerationOne) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  EXPECT_EQ(db->current_version(), 1u);
  EXPECT_TRUE(*env_->fs().Exists("db/checkpoint1"));
  EXPECT_TRUE(*env_->fs().Exists("db/logfile1"));
  EXPECT_TRUE(*env_->fs().Exists("db/version"));
  EXPECT_EQ(app.resets, 1);
}

TEST_F(DatabaseTest, UpdateAppliesAndEnquiriesSee) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  std::string seen;
  ASSERT_TRUE(db->Enquire([&] {
    seen = app.state["k"];
    return OkStatus();
  }).ok());
  EXPECT_EQ(seen, "v");
  EXPECT_EQ(db->stats().updates, 1u);
  EXPECT_EQ(db->stats().enquiries, 1u);
}

TEST_F(DatabaseTest, PreconditionFailureLogsNothing) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v", /*require_absent=*/true)).ok());
  std::uint64_t log_before = db->log_bytes();
  Status status = db->Update(app.PreparePut("k", "other", /*require_absent=*/true));
  EXPECT_TRUE(status.Is(ErrorCode::kFailedPrecondition));
  EXPECT_EQ(db->log_bytes(), log_before);
  EXPECT_EQ(app.state["k"], "v");
  EXPECT_EQ(db->stats().update_precondition_failures, 1u);
}

TEST_F(DatabaseTest, RestartReplaysLog) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("b", "2")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("a", "3")).ok());
  }
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = *OpenDb(app2, Options());
  EXPECT_EQ(app2.state["a"], "3");
  EXPECT_EQ(app2.state["b"], "2");
  EXPECT_EQ(db2->stats().restart.entries_replayed, 3u);
}

TEST_F(DatabaseTest, CheckpointResetsLogAndSurvivesRestart) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("b", "2")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->current_version(), 2u);
    EXPECT_EQ(db->log_bytes(), 0u);
    ASSERT_TRUE(db->Update(app.PreparePut("c", "3")).ok());
  }
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = *OpenDb(app2, Options());
  EXPECT_EQ(app2.state.size(), 3u);
  EXPECT_EQ(app2.state["c"], "3");
  // Only the post-checkpoint update replays.
  EXPECT_EQ(db2->stats().restart.entries_replayed, 1u);
}

TEST_F(DatabaseTest, UncommittedUpdateInvisibleAfterCrash) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("committed", "yes")).ok());

  // Crash during the commit disk write of the next update.
  CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
  env_->disk().SetFaultInjector(plan.AsInjector());
  Status status = db->Update(app.PreparePut("lost", "no"));
  EXPECT_TRUE(status.Is(ErrorCode::kIoError));
  EXPECT_EQ(db->stats().update_commit_failures, 1u);
  // The in-memory state was NOT modified (apply never ran).
  EXPECT_EQ(app.state.count("lost"), 0u);

  env_->disk().SetFaultInjector(nullptr);
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = *OpenDb(app2, Options());
  EXPECT_EQ(app2.state.count("committed"), 1u);
  EXPECT_EQ(app2.state.count("lost"), 0u);
}

TEST_F(DatabaseTest, ApplyFailureAfterCommitPoisons) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  app.fail_next_apply = true;
  Status status = db->Update(app.PreparePut("k", "v"));
  EXPECT_TRUE(status.Is(ErrorCode::kInternal));
  // Everything now fails until reopen.
  EXPECT_TRUE(db->Enquire([] { return OkStatus(); }).Is(ErrorCode::kInternal));
  EXPECT_TRUE(db->Update(app.PreparePut("x", "y")).Is(ErrorCode::kInternal));
  EXPECT_TRUE(db->Checkpoint().Is(ErrorCode::kInternal));
}

TEST_F(DatabaseTest, ReopenAfterPoisonRecoversFromLog) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    app.fail_next_apply = true;
    EXPECT_TRUE(db->Update(app.PreparePut("k", "v")).Is(ErrorCode::kInternal));
  }
  // The update WAS committed; a restart replays it.
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = *OpenDb(app2, Options());
  EXPECT_EQ(app2.state["k"], "v");
  (void)db2;
}

TEST_F(DatabaseTest, ReplaceStateInstallsAndPersists) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("old", "data")).ok());

    TestApp donor;
    donor.state = {{"fresh", "state"}};
    Bytes snapshot = *donor.SerializeState();
    ASSERT_TRUE(db->ReplaceState(AsSpan(snapshot)).ok());
    EXPECT_EQ(app.state.count("old"), 0u);
    EXPECT_EQ(app.state["fresh"], "state");
    EXPECT_EQ(db->current_version(), 2u);  // an immediate checkpoint happened
  }
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = *OpenDb(app2, Options());
  EXPECT_EQ(app2.state["fresh"], "state");
  EXPECT_EQ(app2.state.count("old"), 0u);
  (void)db2;
}

TEST_F(DatabaseTest, UpdateBatchCommitsTogether) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  std::vector<std::function<Result<Bytes>()>> batch{
      app.PreparePut("a", "1"), app.PreparePut("b", "2"), app.PreparePut("c", "3")};
  SimDiskStats before = env_->disk().stats();
  ASSERT_TRUE(db->UpdateBatch(batch).ok());
  SimDiskStats after = env_->disk().stats();
  EXPECT_EQ(app.state.size(), 3u);
  EXPECT_EQ(db->stats().updates, 3u);
  // Group commit: the three updates shared one log page write.
  EXPECT_EQ(after.page_writes - before.page_writes, 1u);
}

TEST_F(DatabaseTest, UpdateBatchAbortsWholeBatchOnPreconditionFailure) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  std::vector<std::function<Result<Bytes>()>> batch{
      app.PreparePut("a", "1"),
      app.PreparePut("a", "dup", /*require_absent=*/true),  // fails: 'a' prepared? no —
      // preconditions see the pre-batch state; 'a' is not yet applied, so this would
      // pass. Use an existing key instead.
  };
  ASSERT_TRUE(db->Update(app.PreparePut("exists", "x")).ok());
  batch[1] = app.PreparePut("exists", "y", /*require_absent=*/true);
  std::uint64_t log_before = db->log_bytes();
  EXPECT_TRUE(db->UpdateBatch(batch).Is(ErrorCode::kFailedPrecondition));
  EXPECT_EQ(db->log_bytes(), log_before);
  EXPECT_EQ(app.state.count("a"), 0u);
}

TEST_F(DatabaseTest, AutoCheckpointEveryNUpdates) {
  TestApp app;
  DatabaseOptions options = Options();
  options.checkpoint_policy.every_n_updates = 3;
  auto db = *OpenDb(app, options);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
  }
  DatabaseStats stats = db->stats();
  EXPECT_EQ(stats.auto_checkpoints, 2u);
  EXPECT_EQ(stats.log_entries_since_checkpoint, 1u);  // 7 = 3 + 3 + 1
}

TEST_F(DatabaseTest, AutoCheckpointByLogBytes) {
  TestApp app;
  DatabaseOptions options = Options();
  options.checkpoint_policy.log_bytes_threshold = 2048;
  auto db = *OpenDb(app, options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("key", std::string(300, 'x'))).ok());
  }
  EXPECT_GT(db->stats().auto_checkpoints, 0u);
}

TEST_F(DatabaseTest, AutoCheckpointByInterval) {
  TestApp app;
  DatabaseOptions options = Options();
  options.checkpoint_policy.interval_micros = 24 * 3600 * kMicrosPerSecond;  // nightly
  auto db = *OpenDb(app, options);
  ASSERT_TRUE(db->Update(app.PreparePut("day1", "x")).ok());
  EXPECT_EQ(db->stats().auto_checkpoints, 0u);
  env_->clock().Charge(25 * 3600 * kMicrosPerSecond);  // a day passes
  ASSERT_TRUE(db->Update(app.PreparePut("day2", "y")).ok());
  EXPECT_EQ(db->stats().auto_checkpoints, 1u);
}

TEST_F(DatabaseTest, KeepPreviousCheckpointEnablesFallback) {
  TestApp app;
  DatabaseOptions options = Options();
  options.keep_previous_checkpoint = true;
  options.fallback_to_previous_checkpoint = true;
  {
    auto db = *OpenDb(app, options);
    ASSERT_TRUE(db->Update(app.PreparePut("early", "1")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // -> version 2; generation 1 retained
    ASSERT_TRUE(db->Update(app.PreparePut("late", "2")).ok());
  }
  // Hard error: the current checkpoint decays.
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/checkpoint2", 0).ok());
  CrashAndRecoverFs();
  // Reinjection needed: Recover() reloads from disk and the page stays bad on disk.
  TestApp app2;
  auto db2 = OpenDb(app2, options);
  ASSERT_TRUE(db2.ok()) << db2.status();
  EXPECT_TRUE((*db2)->stats().restart.used_previous_checkpoint);
  // State fully recovered: previous checkpoint + previous log + current log.
  EXPECT_EQ(app2.state["early"], "1");
  EXPECT_EQ(app2.state["late"], "2");
}

TEST_F(DatabaseTest, CorruptCheckpointWithoutFallbackFails) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("x", "y")).ok());
  }
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/checkpoint1", 0).ok());
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = OpenDb(app2, Options());
  ASSERT_FALSE(db2.ok());
  EXPECT_TRUE(db2.status().Is(ErrorCode::kUnreadable) ||
              db2.status().Is(ErrorCode::kCorruption));
}

TEST_F(DatabaseTest, SkipDamagedLogEntriesMode) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("b", "2")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("c", "3")).ok());
  }
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/logfile1", 1).ok());
  CrashAndRecoverFs();

  TestApp strict_app;
  EXPECT_FALSE(OpenDb(strict_app, Options()).ok());

  DatabaseOptions lenient = Options();
  lenient.skip_damaged_log_entries = true;
  TestApp lenient_app;
  auto db2 = OpenDb(lenient_app, lenient);
  ASSERT_TRUE(db2.ok()) << db2.status();
  EXPECT_EQ(lenient_app.state.count("a"), 1u);
  EXPECT_EQ(lenient_app.state.count("b"), 0u);  // the damaged entry is skipped
  EXPECT_EQ(lenient_app.state.count("c"), 1u);
  EXPECT_EQ((*db2)->stats().restart.entries_skipped, 1u);
}

TEST_F(DatabaseTest, UpdateBreakdownPhasesMeasured) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  UpdateBreakdown breakdown = db->stats().last_update;
  // With the simulated disk charging the clock, the log write dominates.
  EXPECT_GT(breakdown.log_micros, 0);
  EXPECT_EQ(breakdown.total_micros,
            breakdown.prepare_micros + breakdown.log_micros + breakdown.apply_micros);
}

TEST_F(DatabaseTest, EnquiriesNeverTouchTheDisk) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  SimDiskStats before = env_->disk().stats();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Enquire([] { return OkStatus(); }).ok());
  }
  SimDiskStats after = env_->disk().stats();
  EXPECT_EQ(after.page_reads, before.page_reads);
  EXPECT_EQ(after.page_writes, before.page_writes);
}

TEST_F(DatabaseTest, EachUpdateIsOneDiskWrite) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("warm", "up")).ok());
  SimDiskStats before = env_->disk().stats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
  }
  SimDiskStats after = env_->disk().stats();
  // "Updates take the time for enquiries plus one disk write."
  EXPECT_EQ(after.page_writes - before.page_writes, 10u);
}

TEST_F(DatabaseTest, InterruptedCheckpointFallsBackToPreviousGeneration) {
  TestApp app;
  {
    auto db = *OpenDb(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("persisted", "1")).ok());
    // Crash during the checkpoint's disk writes (before the newversion commit).
    CrashPlan plan(env_->disk().next_durable_op_sequence() + 1, FaultAction::kCrashBefore);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Checkpoint().ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  TestApp app2;
  auto db2 = OpenDb(app2, Options());
  ASSERT_TRUE(db2.ok()) << db2.status();
  EXPECT_EQ((*db2)->current_version(), 1u);  // still on the old generation
  EXPECT_EQ(app2.state["persisted"], "1");
}

TEST_F(DatabaseTest, OpenRequiresVfsAndDir) {
  TestApp app;
  DatabaseOptions options;
  EXPECT_TRUE(Database::Open(app, options).status().Is(ErrorCode::kInvalidArgument));
}

TEST_F(DatabaseTest, EmptyBatchRejected) {
  TestApp app;
  auto db = *OpenDb(app, Options());
  EXPECT_TRUE(db->UpdateBatch({}).Is(ErrorCode::kInvalidArgument));
}

}  // namespace
}  // namespace sdb
