// Tests for the Section 2 baseline techniques and the smalldb adapter, including the
// crash behaviours that motivate the paper's comparison.
#include <gtest/gtest.h>

#include "src/baselines/adhoc_page_db.h"
#include "src/baselines/smalldb_kv.h"
#include "src/baselines/textfile_db.h"
#include "src/baselines/wal_commit_db.h"
#include "src/storage/sim_env.h"

namespace sdb::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  std::unique_ptr<KvDatabase> OpenKind(std::string_view kind, std::string dir) {
    if (kind == "textfile") {
      return std::move(*TextFileDb::Open(env_->fs(), std::move(dir)));
    }
    if (kind == "adhoc") {
      return std::move(*AdHocPageDb::Open(env_->fs(), std::move(dir)));
    }
    if (kind == "walcommit") {
      return std::move(*WalCommitDb::Open(env_->fs(), std::move(dir)));
    }
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = std::move(dir);
    return std::move(*SmallDbKv::Open(options));
  }

  void CrashAndRecoverFs() {
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }

  std::unique_ptr<SimEnv> env_;
};

class AllKindsTest : public BaselinesTest,
                     public ::testing::WithParamInterface<const char*> {};

TEST_P(AllKindsTest, CrudRoundTrip) {
  auto db = OpenKind(GetParam(), "db");
  ASSERT_TRUE(db->Put("alpha", "1").ok());
  ASSERT_TRUE(db->Put("beta", "2").ok());
  EXPECT_EQ(*db->Get("alpha"), "1");
  ASSERT_TRUE(db->Put("alpha", "updated").ok());
  EXPECT_EQ(*db->Get("alpha"), "updated");
  ASSERT_TRUE(db->Delete("beta").ok());
  EXPECT_TRUE(db->Get("beta").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(db->Delete("beta").Is(ErrorCode::kNotFound));
  auto keys = *db->Keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha"}));
  EXPECT_TRUE(db->Verify().ok());
}

TEST_P(AllKindsTest, PersistsAcrossReopen) {
  {
    auto db = OpenKind(GetParam(), "db");
    ASSERT_TRUE(db->Put("persist", "me").ok());
    ASSERT_TRUE(db->Put("and", "me too").ok());
    ASSERT_TRUE(db->Delete("and").ok());
  }
  CrashAndRecoverFs();
  auto db = OpenKind(GetParam(), "db");
  EXPECT_EQ(*db->Get("persist"), "me");
  EXPECT_TRUE(db->Get("and").status().Is(ErrorCode::kNotFound));
}

TEST_P(AllKindsTest, LargeValuesSpanPages) {
  auto db = OpenKind(GetParam(), "db");
  std::string big(3000, 'Z');
  ASSERT_TRUE(db->Put("big", big).ok());
  EXPECT_EQ(*db->Get("big"), big);
  ASSERT_TRUE(db->Put("big", "small now").ok());
  EXPECT_EQ(*db->Get("big"), "small now");
  EXPECT_TRUE(db->Verify().ok());
}

TEST_P(AllKindsTest, ManyKeys) {
  {
    auto db = OpenKind(GetParam(), "db");
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
    }
  }
  CrashAndRecoverFs();
  auto db = OpenKind(GetParam(), "db");
  EXPECT_EQ(db->Keys()->size(), 50u);
  EXPECT_EQ(*db->Get("key37"), "value37");
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKindsTest,
                         ::testing::Values("textfile", "adhoc", "walcommit", "smalldb"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           return std::string(param_info.param);
                         });

// --- technique-specific behaviours ---

TEST_F(BaselinesTest, TextFileRewritesWholeFileEveryUpdate) {
  auto db = *TextFileDb::Open(env_->fs(), "db");
  std::string big(2000, 'x');
  ASSERT_TRUE(db->Put("big", big).ok());
  SimDiskStats before = env_->disk().stats();
  ASSERT_TRUE(db->Put("tiny", "y").ok());
  SimDiskStats after = env_->disk().stats();
  // A one-byte update rewrote the whole (multi-page) file.
  EXPECT_GT(after.bytes_written - before.bytes_written, 2000u);
  EXPECT_EQ(db->rewrites(), 2u);
}

TEST_F(BaselinesTest, TextFileAtomicRenameSurvivesCrashMidRewrite) {
  {
    auto db = *TextFileDb::Open(env_->fs(), "db");
    ASSERT_TRUE(db->Put("stable", "value").ok());
    // Crash during the next rewrite, at each of its durable steps.
    CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Put("updated", "value").ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  auto db = TextFileDb::Open(env_->fs(), "db");
  ASSERT_TRUE(db.ok());
  // The old complete version is intact (atomic rename never installed the torn file).
  EXPECT_EQ(*(*db)->Get("stable"), "value");
  EXPECT_TRUE((*db)->Get("updated").status().Is(ErrorCode::kNotFound));
}

TEST_F(BaselinesTest, AdHocSingleSlotUpdateIsOneDiskWrite) {
  auto db = *AdHocPageDb::Open(env_->fs(), "db");
  ASSERT_TRUE(db->Put("k", "small").ok());
  SimDiskStats before = env_->disk().stats();
  ASSERT_TRUE(db->Put("k", "other").ok());
  SimDiskStats after = env_->disk().stats();
  // "typically one disk write per update" — the paper's ad-hoc performance claim.
  EXPECT_EQ(after.page_writes - before.page_writes, 1u);
}

TEST_F(BaselinesTest, AdHocTornMultiPageUpdateCorruptsDatabase) {
  // The paper: "updates are typically performed by overwriting existing data in place.
  // This leaves the database quite vulnerable to transient errors ... particularly
  // true if the update modifies multiple pages."
  {
    auto db = *AdHocPageDb::Open(env_->fs(), "db");
    ASSERT_TRUE(db->Put("victim", std::string(900, 'A')).ok());  // 4+ slots
    ASSERT_TRUE(env_->fs().SyncDir("db").ok());
    // Crash on the second slot write of the in-place overwrite.
    CrashPlan plan(env_->disk().next_durable_op_sequence() + 1, FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Put("victim", std::string(900, 'B')).ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  // The database is now damaged: either open fails or Verify reports corruption.
  auto reopened = AdHocPageDb::Open(env_->fs(), "db");
  if (reopened.ok()) {
    Status verify = (*reopened)->Verify();
    Result<std::string> value = (*reopened)->Get("victim");
    bool value_mangled =
        value.ok() && *value != std::string(900, 'A') && *value != std::string(900, 'B');
    EXPECT_TRUE(!verify.ok() || value_mangled || !value.ok())
        << "torn multi-page update went unnoticed";
  } else {
    EXPECT_TRUE(reopened.status().Is(ErrorCode::kCorruption) ||
                reopened.status().Is(ErrorCode::kUnreadable));
  }
}

TEST_F(BaselinesTest, WalCommitUsesTwoSyncsPerUpdate) {
  auto db = *WalCommitDb::Open(env_->fs(), "db");
  ASSERT_TRUE(db->Put("warm", "up").ok());
  SimDiskStats before = env_->disk().stats();
  ASSERT_TRUE(db->Put("k", "v").ok());
  SimDiskStats after = env_->disk().stats();
  // "a naive implementation of atomic commit will require two disk writes."
  EXPECT_EQ(after.page_writes - before.page_writes, 2u);
}

TEST_F(BaselinesTest, WalCommitRepairsTornDataWrite) {
  {
    auto db = *WalCommitDb::Open(env_->fs(), "db");
    ASSERT_TRUE(db->Put("victim", std::string(900, 'A')).ok());
    ASSERT_TRUE(env_->fs().SyncDir("db").ok());
    // The WAL entry for the second update commits (first sync) and the crash tears the
    // in-place data write that follows.
    CrashPlan plan(env_->disk().next_durable_op_sequence() + 2, FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Put("victim", std::string(900, 'B')).ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  auto db = WalCommitDb::Open(env_->fs(), "db");
  ASSERT_TRUE(db.ok()) << db.status();
  // WAL replay repaired the torn write: the committed new value is fully there.
  EXPECT_EQ(*(*db)->Get("victim"), std::string(900, 'B'));
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST_F(BaselinesTest, WalCommitUncommittedUpdateInvisible) {
  {
    auto db = *WalCommitDb::Open(env_->fs(), "db");
    ASSERT_TRUE(db->Put("before", "crash").ok());
    ASSERT_TRUE(env_->fs().SyncDir("db").ok());
    // Crash during the WAL append itself: the update never committed.
    CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Put("lost", "x").ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  auto db = *WalCommitDb::Open(env_->fs(), "db");
  EXPECT_EQ(*db->Get("before"), "crash");
  EXPECT_TRUE(db->Get("lost").status().Is(ErrorCode::kNotFound));
}

TEST_F(BaselinesTest, SmallDbKvCheckpointAndRecover) {
  DatabaseOptions options;
  options.vfs = &env_->fs();
  options.dir = "db";
  {
    auto db = *SmallDbKv::Open(options);
    ASSERT_TRUE(db->Put("a", "1").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Put("b", "2").ok());
  }
  CrashAndRecoverFs();
  auto db = *SmallDbKv::Open(options);
  EXPECT_EQ(*db->Get("a"), "1");
  EXPECT_EQ(*db->Get("b"), "2");
  EXPECT_EQ(db->database().stats().restart.entries_replayed, 1u);
}

TEST_F(BaselinesTest, SmallDbKvOneSyncPerUpdate) {
  DatabaseOptions options;
  options.vfs = &env_->fs();
  options.dir = "db";
  auto db = *SmallDbKv::Open(options);
  ASSERT_TRUE(db->Put("warm", "up").ok());
  SimDiskStats before = env_->disk().stats();
  ASSERT_TRUE(db->Put("k", "v").ok());
  SimDiskStats after = env_->disk().stats();
  EXPECT_EQ(after.page_writes - before.page_writes, 1u);
}

}  // namespace
}  // namespace sdb::baselines
