// Tests for the PosixFs backend against a real temporary directory, including a full
// engine round trip on the host file system.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/database.h"
#include "src/storage/posix_fs.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class PosixFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sdb_posix_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
    fs_ = std::make_unique<PosixFs>(root_.string());
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
  std::unique_ptr<PosixFs> fs_;
};

TEST_F(PosixFsTest, CreateWriteReadBack) {
  ASSERT_TRUE(WriteWholeFile(*fs_, "file", AsSpan(std::string_view("hello posix"))).ok());
  Bytes data = *ReadWholeFile(*fs_, "file");
  EXPECT_EQ(AsStringView(AsSpan(data)), "hello posix");
}

TEST_F(PosixFsTest, OpenModesBehave) {
  EXPECT_TRUE(fs_->Open("missing", OpenMode::kRead).status().Is(ErrorCode::kNotFound));
  ASSERT_TRUE(WriteWholeFile(*fs_, "f", AsSpan(std::string_view("x"))).ok());
  EXPECT_TRUE(
      fs_->Open("f", OpenMode::kCreateExclusive).status().Is(ErrorCode::kAlreadyExists));
  auto truncated = *fs_->Open("f", OpenMode::kTruncate);
  EXPECT_EQ(*truncated->Size(), 0u);
}

TEST_F(PosixFsTest, AppendWriteAtTruncate) {
  auto file = *fs_->Open("f", OpenMode::kCreate);
  ASSERT_TRUE(file->Append(AsSpan(std::string_view("0123456789"))).ok());
  ASSERT_TRUE(file->WriteAt(2, AsSpan(std::string_view("XX"))).ok());
  ASSERT_TRUE(file->Truncate(6).ok());
  ASSERT_TRUE(file->Sync().ok());
  Bytes data = *file->ReadAt(0, 100);
  EXPECT_EQ(AsStringView(AsSpan(data)), "01XX45");
}

TEST_F(PosixFsTest, RenameAndDelete) {
  ASSERT_TRUE(WriteWholeFile(*fs_, "a", AsSpan(std::string_view("data"))).ok());
  ASSERT_TRUE(fs_->Rename("a", "b").ok());
  EXPECT_FALSE(*fs_->Exists("a"));
  EXPECT_TRUE(*fs_->Exists("b"));
  ASSERT_TRUE(fs_->Delete("b").ok());
  EXPECT_FALSE(*fs_->Exists("b"));
  EXPECT_TRUE(fs_->Delete("b").Is(ErrorCode::kNotFound));
}

TEST_F(PosixFsTest, ListAndDirs) {
  ASSERT_TRUE(fs_->CreateDir("sub").ok());
  ASSERT_TRUE(WriteWholeFile(*fs_, "sub/one", ByteSpan{}).ok());
  ASSERT_TRUE(WriteWholeFile(*fs_, "sub/two", ByteSpan{}).ok());
  auto names = *fs_->List("sub");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
  ASSERT_TRUE(fs_->SyncDir("sub").ok());
}

TEST_F(PosixFsTest, AtomicWriteFileReplaces) {
  ASSERT_TRUE(fs_->CreateDir("d").ok());
  ASSERT_TRUE(AtomicWriteFile(*fs_, "d", "d/target", AsSpan(std::string_view("v1"))).ok());
  ASSERT_TRUE(AtomicWriteFile(*fs_, "d", "d/target", AsSpan(std::string_view("v2"))).ok());
  Bytes data = *ReadWholeFile(*fs_, "d/target");
  EXPECT_EQ(AsStringView(AsSpan(data)), "v2");
  EXPECT_FALSE(*fs_->Exists("d/target.tmp"));
}

TEST_F(PosixFsTest, FullEngineRoundTripOnRealDisk) {
  TestApp app;
  DatabaseOptions options;
  options.vfs = fs_.get();
  options.dir = "engine";
  {
    auto db = *Database::Open(app, options);
    ASSERT_TRUE(db->Update(app.PreparePut("persisted", "for real")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Update(app.PreparePut("tail", "replayed")).ok());
  }
  TestApp app2;
  auto db2 = *Database::Open(app2, options);
  EXPECT_EQ(app2.state["persisted"], "for real");
  EXPECT_EQ(app2.state["tail"], "replayed");
  EXPECT_EQ(db2->current_version(), 2u);
  // The paper's file naming, on an actual Unix file system.
  EXPECT_TRUE(std::filesystem::exists(root_ / "engine" / "checkpoint2"));
  EXPECT_TRUE(std::filesystem::exists(root_ / "engine" / "logfile2"));
  EXPECT_TRUE(std::filesystem::exists(root_ / "engine" / "version"));
}

}  // namespace
}  // namespace sdb
