// Tests for NameServer: client operations through the engine, restart recovery,
// replication bookkeeping, journal eviction.
#include <gtest/gtest.h>

#include "src/nameserver/name_server.h"
#include "src/storage/sim_env.h"

namespace sdb::ns {
namespace {

class NameServerTest : public ::testing::Test {
 protected:
  NameServerTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  NameServerOptions Options(std::string dir = "ns", std::string replica = "r1") {
    NameServerOptions options;
    options.db.vfs = &env_->fs();
    options.db.dir = std::move(dir);
    options.db.clock = &env_->clock();
    options.replica_id = std::move(replica);
    return options;
  }

  void CrashAndRecoverFs() {
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(NameServerTest, SetLookupList) {
  auto server = *NameServer::Open(Options());
  ASSERT_TRUE(server->Set("host/alpha", "10.0.0.1").ok());
  ASSERT_TRUE(server->Set("host/beta", "10.0.0.2").ok());
  EXPECT_EQ(*server->Lookup("host/alpha"), "10.0.0.1");
  EXPECT_EQ(*server->List("host"), (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(NameServerTest, RemoveRequiresExistence) {
  auto server = *NameServer::Open(Options());
  EXPECT_TRUE(server->Remove("ghost").Is(ErrorCode::kFailedPrecondition));
  ASSERT_TRUE(server->Set("real", "v").ok());
  ASSERT_TRUE(server->Remove("real").ok());
  EXPECT_TRUE(server->Lookup("real").status().Is(ErrorCode::kNotFound));
}

TEST_F(NameServerTest, EmptyPathUpdateRejected) {
  auto server = *NameServer::Open(Options());
  EXPECT_FALSE(server->Set("", "v").ok());
  EXPECT_FALSE(server->Set("a//b", "v").ok());
}

TEST_F(NameServerTest, StateSurvivesRestartViaLogReplay) {
  {
    auto server = *NameServer::Open(Options());
    ASSERT_TRUE(server->Set("a/b", "1").ok());
    ASSERT_TRUE(server->Set("c", "2").ok());
    ASSERT_TRUE(server->Remove("a/b").ok());
  }
  CrashAndRecoverFs();
  auto server = *NameServer::Open(Options());
  EXPECT_TRUE(server->Lookup("a/b").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(*server->Lookup("c"), "2");
  EXPECT_EQ(server->database().stats().restart.entries_replayed, 3u);
}

TEST_F(NameServerTest, StateSurvivesRestartViaCheckpoint) {
  {
    auto server = *NameServer::Open(Options());
    ASSERT_TRUE(server->Set("x", "1").ok());
    ASSERT_TRUE(server->Checkpoint().ok());
    ASSERT_TRUE(server->Set("y", "2").ok());
  }
  CrashAndRecoverFs();
  auto server = *NameServer::Open(Options());
  EXPECT_EQ(*server->Lookup("x"), "1");
  EXPECT_EQ(*server->Lookup("y"), "2");
  EXPECT_EQ(server->database().stats().restart.entries_replayed, 1u);
}

TEST_F(NameServerTest, ReplicationStateSurvivesRestart) {
  {
    auto server = *NameServer::Open(Options());
    ASSERT_TRUE(server->Set("k", "v").ok());
    ASSERT_TRUE(server->Set("k", "v2").ok());
    VersionVector vv = server->version_vector();
    EXPECT_EQ(vv["r1"], 2u);
  }
  CrashAndRecoverFs();
  auto server = *NameServer::Open(Options());
  VersionVector vv = server->version_vector();
  EXPECT_EQ(vv["r1"], 2u);
  EXPECT_EQ(server->journal_size(), 2u);
  // New updates continue the sequence, not restart it.
  ASSERT_TRUE(server->Set("k", "v3").ok());
  EXPECT_EQ(server->version_vector()["r1"], 3u);
}

TEST_F(NameServerTest, ApplyRemoteUpdateIsIdempotent) {
  auto server = *NameServer::Open(Options("ns", "r1"));
  NameServerUpdate update;
  update.kind = static_cast<std::uint8_t>(UpdateKind::kSet);
  update.path = "remote/key";
  update.value = "remote-value";
  update.lamport = 10;
  update.origin = "r2";
  update.sequence = 1;

  ASSERT_TRUE(server->ApplyRemoteUpdate(update).ok());
  EXPECT_EQ(*server->Lookup("remote/key"), "remote-value");
  // Second delivery: a no-op, not an error, and no extra log entry.
  std::uint64_t log_before = server->database().log_bytes();
  ASSERT_TRUE(server->ApplyRemoteUpdate(update).ok());
  EXPECT_EQ(server->database().log_bytes(), log_before);
}

TEST_F(NameServerTest, ApplyRemoteUpdateDetectsGaps) {
  auto server = *NameServer::Open(Options("ns", "r1"));
  NameServerUpdate update;
  update.kind = static_cast<std::uint8_t>(UpdateKind::kSet);
  update.path = "k";
  update.value = "v";
  update.lamport = 5;
  update.origin = "r2";
  update.sequence = 3;  // never saw 1, 2
  EXPECT_TRUE(server->ApplyRemoteUpdate(update).Is(ErrorCode::kFailedPrecondition));
}

TEST_F(NameServerTest, RemoteUpdatesAdvanceLamport) {
  auto server = *NameServer::Open(Options("ns", "r1"));
  NameServerUpdate update;
  update.kind = static_cast<std::uint8_t>(UpdateKind::kSet);
  update.path = "k";
  update.value = "remote";
  update.lamport = 100;
  update.origin = "r2";
  update.sequence = 1;
  ASSERT_TRUE(server->ApplyRemoteUpdate(update).ok());
  // A local update after seeing lamport 100 must stamp higher, so it wins LWW.
  ASSERT_TRUE(server->Set("k", "local").ok());
  EXPECT_EQ(*server->Lookup("k"), "local");
}

TEST_F(NameServerTest, UpdatesSinceFiltersByVersionVector) {
  auto server = *NameServer::Open(Options("ns", "r1"));
  ASSERT_TRUE(server->Set("a", "1").ok());
  ASSERT_TRUE(server->Set("b", "2").ok());
  ASSERT_TRUE(server->Set("c", "3").ok());

  VersionVector peer_has;  // nothing
  auto all = *server->UpdatesSince(peer_has);
  EXPECT_EQ(all.size(), 3u);

  peer_has["r1"] = 2;
  auto tail = *server->UpdatesSince(peer_has);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].path, "c");

  peer_has["r1"] = 3;
  EXPECT_TRUE(server->UpdatesSince(peer_has)->empty());
}

TEST_F(NameServerTest, JournalEvictionForcesFullSync) {
  NameServerOptions options = Options();
  options.journal_capacity = 4;
  auto server = *NameServer::Open(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server->Set("k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(server->journal_size(), 4u);
  VersionVector ancient;  // a peer that saw nothing
  auto result = server->UpdatesSince(ancient);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().Is(ErrorCode::kFailedPrecondition));
  // A nearly-caught-up peer is still serviceable.
  VersionVector recent{{"r1", 7}};
  EXPECT_EQ(server->UpdatesSince(recent)->size(), 3u);
}

TEST_F(NameServerTest, FullStateInstallsOnAnotherServer) {
  auto source = *NameServer::Open(Options("ns1", "r1"));
  ASSERT_TRUE(source->Set("shared/data", "payload").ok());
  Bytes state = *source->FullState();

  auto target = *NameServer::Open(Options("ns2", "r2"));
  ASSERT_TRUE(target->Set("local/only", "doomed").ok());
  ASSERT_TRUE(target->InstallFullState(AsSpan(state)).ok());
  EXPECT_EQ(*target->Lookup("shared/data"), "payload");
  EXPECT_TRUE(target->Lookup("local/only").status().Is(ErrorCode::kNotFound));
  // The install is durable: restart keeps it.
  EXPECT_GE(target->database().current_version(), 2u);
}

TEST_F(NameServerTest, PaperWorkloadSmallDatabase) {
  // A miniature of the paper's 1 MB name-server database: many bindings, then verify a
  // sample plus restart integrity.
  auto server = *NameServer::Open(Options());
  for (int i = 0; i < 500; ++i) {
    std::string path = "org/dept" + std::to_string(i % 10) + "/user" + std::to_string(i);
    ASSERT_TRUE(server->Set(path, "uid-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(server->Checkpoint().ok());
  EXPECT_EQ(*server->Lookup("org/dept3/user123"), "uid-123");
  EXPECT_EQ(server->List("org")->size(), 10u);

  CrashAndRecoverFs();
  auto reopened = *NameServer::Open(Options());
  EXPECT_EQ(*reopened->Lookup("org/dept7/user487"), "uid-487");
}

}  // namespace
}  // namespace sdb::ns
