// Systematic crash-point enumeration (the test twin of experiment E8).
//
// A scripted workload runs against the engine while a CrashPlan injects a power
// failure at the Nth durable disk operation, for every N and for each failure flavour
// (before / torn / after). After each crash the database is reopened and the paper's
// Section 4 guarantees are checked:
//   - every update whose Update() call returned OK is present (committed stays);
//   - every update whose Update() call failed is absent-or-present-consistently
//     (an uncommitted update may never be partially applied — here: the value is
//     either the old one or the new one, and the database opens cleanly);
//   - the database always recovers without manual intervention.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>

#include "src/core/integrity.h"
#include "src/sim/fault_schedule.h"
#include "src/sim/kv_app.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

struct ScriptResult {
  std::vector<std::string> acknowledged;  // keys whose update returned OK
  std::vector<std::string> failed;        // keys whose update failed (crash)
  std::uint64_t total_durable_ops = 0;
  bool crashed = false;
};

// Runs the scripted workload: 6 updates with a checkpoint in the middle. Returns which
// updates were acknowledged before the crash (if any).
ScriptResult RunScript(SimEnv& env) {
  ScriptResult result;
  TestApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();

  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    result.crashed = true;
    return result;
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  auto do_update = [&](const std::string& key) {
    Status status = db->Update(app.PreparePut(key, "value-of-" + key));
    if (status.ok()) {
      result.acknowledged.push_back(key);
    } else {
      result.failed.push_back(key);
      result.crashed = true;
    }
    return status.ok();
  };

  for (const char* key : {"u1", "u2", "u3"}) {
    if (!do_update(key)) {
      return result;
    }
  }
  if (!db->Checkpoint().ok()) {
    result.crashed = true;
    return result;
  }
  for (const char* key : {"u4", "u5", "u6"}) {
    if (!do_update(key)) {
      return result;
    }
  }
  result.total_durable_ops = env.disk().next_durable_op_sequence() - 1;
  return result;
}

class CrashMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashMatrixTest, RecoveryInvariantsHoldAtEveryCrashPoint) {
  FaultAction action = static_cast<FaultAction>(GetParam());

  // Dry run to learn the number of durable operations in the script.
  std::uint64_t total_ops = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    ScriptResult dry = RunScript(dry_env);
    ASSERT_FALSE(dry.crashed);
    ASSERT_EQ(dry.acknowledged.size(), 6u);
    total_ops = dry.total_durable_ops;
    ASSERT_GT(total_ops, 10u);
  }

  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    SCOPED_TRACE("crash at durable op " + std::to_string(crash_at));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());

    ScriptResult script = RunScript(env);
    EXPECT_TRUE(plan.fired());
    EXPECT_TRUE(script.crashed);

    // Power comes back.
    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());

    TestApp recovered;
    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    options.clock = &env.clock();
    auto db = Database::Open(recovered, options);
    ASSERT_TRUE(db.ok()) << "recovery failed after crash at op " << crash_at << ": "
                         << db.status();

    // Invariant 1: every acknowledged update is present with its exact value.
    for (const std::string& key : script.acknowledged) {
      ASSERT_EQ(recovered.state.count(key), 1u)
          << "acknowledged update " << key << " lost (crash at op " << crash_at << ")";
      EXPECT_EQ(recovered.state[key], "value-of-" + key);
    }
    // Invariant 2: an unacknowledged update is either fully present (the crash hit
    // after its commit point) or fully absent — never mangled.
    for (const std::string& key : script.failed) {
      if (recovered.state.count(key) != 0) {
        EXPECT_EQ(recovered.state[key], "value-of-" + key);
      }
    }
    // Invariant 3: nothing else crept in.
    EXPECT_LE(recovered.state.size(), script.acknowledged.size() + script.failed.size());

    // And the recovered database remains usable.
    TestApp post = recovered;
    ASSERT_TRUE((*db)->Update(recovered.PreparePut("post-recovery", "works")).ok());
    EXPECT_EQ(recovered.state["post-recovery"], "works");
    (void)post;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaultFlavours, CrashMatrixTest,
                         ::testing::Values(static_cast<int>(FaultAction::kCrashBefore),
                                           static_cast<int>(FaultAction::kCrashTorn),
                                           static_cast<int>(FaultAction::kCrashAfter)),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           switch (static_cast<FaultAction>(param_info.param)) {
                             case FaultAction::kCrashBefore:
                               return std::string("Before");
                             case FaultAction::kCrashTorn:
                               return std::string("Torn");
                             case FaultAction::kCrashAfter:
                               return std::string("After");
                             default:
                               return std::string("None");
                           }
                         });

// --- group-commit crash matrix ---
//
// Concurrent updaters share commit batches; the crash is injected at an arbitrary
// durable disk operation, which lands it before, inside, or — the interesting case —
// between a batch's fsync and its in-memory applies (records durable, nobody
// acknowledged, process dies). After "reboot" the Section 4 invariants must hold for
// every interleaving the scheduler produced.

struct ConcurrentScriptResult {
  std::vector<std::string> acknowledged;  // keys whose Update() returned OK
  std::vector<std::string> failed;        // keys whose Update() returned an error
};

ConcurrentScriptResult RunConcurrentScript(SimEnv& env, int threads, int per_thread) {
  ConcurrentScriptResult result;
  TestApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();

  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    return result;
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  std::mutex mu;
  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        Status status = db->Update(app.PreparePut(key, "value-of-" + key));
        std::lock_guard<std::mutex> lock(mu);
        if (status.ok()) {
          result.acknowledged.push_back(key);
        } else {
          result.failed.push_back(key);
        }
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  return result;
}

class GroupCommitCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupCommitCrashTest, AcknowledgedBatchedUpdatesSurviveEveryCrashPoint) {
  FaultAction action = static_cast<FaultAction>(GetParam());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;

  // Batch composition varies run to run, so there is no fixed op count to enumerate;
  // sweep a generous range and skip points the run never reached.
  for (std::uint64_t crash_at = 1; crash_at <= 40; ++crash_at) {
    SCOPED_TRACE("crash at durable op " + std::to_string(crash_at));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());

    ConcurrentScriptResult script = RunConcurrentScript(env, kThreads, kPerThread);
    if (!plan.fired()) {
      continue;  // this run coalesced enough to finish before the crash point
    }

    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());

    TestApp recovered;
    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    options.clock = &env.clock();
    auto db = Database::Open(recovered, options);
    ASSERT_TRUE(db.ok()) << "recovery failed after crash at op " << crash_at << ": "
                         << db.status();

    // Invariant 1: an acknowledged update was fsynced before its Update() returned,
    // whatever batch it rode in — it must be present with its exact value.
    for (const std::string& key : script.acknowledged) {
      ASSERT_EQ(recovered.state.count(key), 1u)
          << "acknowledged update " << key << " lost (crash at op " << crash_at << ")";
      EXPECT_EQ(recovered.state[key], "value-of-" + key);
    }
    // Invariant 2: unacknowledged updates are all-or-nothing. This includes records
    // whose batch fsync completed but whose waiters never got the OK back — the
    // "killed between batch-fsync and apply" window.
    for (const std::string& key : script.failed) {
      if (recovered.state.count(key) != 0) {
        EXPECT_EQ(recovered.state[key], "value-of-" + key);
      }
    }
    EXPECT_LE(recovered.state.size(),
              script.acknowledged.size() + script.failed.size());

    // And the recovered database takes new updates.
    ASSERT_TRUE((*db)->Update(recovered.PreparePut("post-recovery", "works")).ok());
    EXPECT_EQ(recovered.state["post-recovery"], "works");
  }
}

INSTANTIATE_TEST_SUITE_P(BatchFaultFlavours, GroupCommitCrashTest,
                         ::testing::Values(static_cast<int>(FaultAction::kCrashTorn),
                                           static_cast<int>(FaultAction::kCrashAfter)),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return static_cast<FaultAction>(param_info.param) ==
                                          FaultAction::kCrashTorn
                                      ? std::string("Torn")
                                      : std::string("After");
                         });

// --- checkpoint switch-window matrix ---
//
// The version-file switch (Section 3: write checkpoint<N+1>, create logfile<N+1>,
// write `newversion` — the commit point — then clean up and rename) is the most
// delicate durable-op sequence in the engine. This matrix brackets Checkpoint()'s
// durable-op window with a dry run, then crashes at EVERY op inside it, crossed with
// every failure flavour, plus a metadata-sync-only kCrashTorn pass that concentrates
// torn writes on the directory syncs the protocol's commit point depends on.

struct SwitchWindowResult {
  std::vector<std::string> acknowledged;
  std::vector<std::string> failed;
  std::uint64_t window_first = 0;  // first durable op issued by Checkpoint()
  std::uint64_t window_last = 0;   // last durable op issued by Checkpoint()
  bool checkpoint_ok = false;
};

// Three updates, a checkpoint (with its durable-op window recorded), three more
// updates. Update failures are tolerated — after a crash or a poisoned switch the
// engine reports errors by design; the matrix only cares who was acknowledged.
SwitchWindowResult RunSwitchScript(SimEnv& env) {
  SwitchWindowResult result;
  TestApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();

  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    return result;
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  auto do_update = [&](const std::string& key) {
    if (db->Update(app.PreparePut(key, "value-of-" + key)).ok()) {
      result.acknowledged.push_back(key);
    } else {
      result.failed.push_back(key);
    }
  };

  for (const char* key : {"s1", "s2", "s3"}) {
    do_update(key);
  }
  result.window_first = env.disk().next_durable_op_sequence();
  result.checkpoint_ok = db->Checkpoint().ok();
  result.window_last = env.disk().next_durable_op_sequence() - 1;
  for (const char* key : {"s4", "s5", "s6"}) {
    do_update(key);
  }
  return result;
}

// Reopens after a power cut and asserts the Section 4 invariants against the script's
// acknowledgement record.
void CheckSwitchRecovery(SimEnv& env, const SwitchWindowResult& script,
                         std::uint64_t crash_at) {
  env.disk().SetFaultInjector(nullptr);
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());

  TestApp recovered;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  auto db = Database::Open(recovered, options);
  ASSERT_TRUE(db.ok()) << "recovery failed after crash at op " << crash_at << ": "
                       << db.status();

  for (const std::string& key : script.acknowledged) {
    ASSERT_EQ(recovered.state.count(key), 1u)
        << "acknowledged update " << key << " lost (crash at op " << crash_at << ")";
    EXPECT_EQ(recovered.state[key], "value-of-" + key);
  }
  for (const std::string& key : script.failed) {
    if (recovered.state.count(key) != 0) {
      EXPECT_EQ(recovered.state[key], "value-of-" + key);
    }
  }
  EXPECT_LE(recovered.state.size(), script.acknowledged.size() + script.failed.size());

  ASSERT_TRUE((*db)->Update(recovered.PreparePut("post-recovery", "works")).ok());
  EXPECT_EQ(recovered.state["post-recovery"], "works");
}

class SwitchWindowCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(SwitchWindowCrashTest, EveryDurableOpOfTheSwitchIsCrashSafe) {
  FaultAction action = static_cast<FaultAction>(GetParam());

  // Dry run: bracket the durable-op window Checkpoint() occupies.
  std::uint64_t window_first = 0;
  std::uint64_t window_last = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    SwitchWindowResult dry = RunSwitchScript(dry_env);
    ASSERT_TRUE(dry.checkpoint_ok);
    ASSERT_EQ(dry.acknowledged.size(), 6u);
    window_first = dry.window_first;
    window_last = dry.window_last;
    // The switch protocol issues at least: checkpoint write+sync, log create+sync,
    // dir sync, newversion write (commit point), final dir sync.
    ASSERT_GE(window_last - window_first + 1, 5u);
  }

  for (std::uint64_t crash_at = window_first; crash_at <= window_last; ++crash_at) {
    SCOPED_TRACE("crash at switch op " + std::to_string(crash_at) + " (window " +
                 std::to_string(window_first) + ".." + std::to_string(window_last) +
                 ")");
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());

    SwitchWindowResult script = RunSwitchScript(env);
    EXPECT_TRUE(plan.fired());
    EXPECT_FALSE(script.checkpoint_ok);

    CheckSwitchRecovery(env, script, crash_at);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SwitchFaultFlavours, SwitchWindowCrashTest,
                         ::testing::Values(static_cast<int>(FaultAction::kCrashBefore),
                                           static_cast<int>(FaultAction::kCrashTorn),
                                           static_cast<int>(FaultAction::kCrashAfter)),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           switch (static_cast<FaultAction>(param_info.param)) {
                             case FaultAction::kCrashBefore:
                               return std::string("Before");
                             case FaultAction::kCrashTorn:
                               return std::string("Torn");
                             case FaultAction::kCrashAfter:
                               return std::string("After");
                             default:
                               return std::string("None");
                           }
                         });

TEST(SwitchWindowCrashTest, TornMetadataSyncAtEverySwitchSyncIsCrashSafe) {
  // The commit point of the switch is a directory sync making `newversion` durable.
  // Target kCrashTorn at each metadata sync inside the window specifically, via
  // metadata-only scripted fault points (page writes at the same sequence are let
  // through untouched, so only the syncs are enumerated).
  std::uint64_t window_first = 0;
  std::uint64_t window_last = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    SwitchWindowResult dry = RunSwitchScript(dry_env);
    ASSERT_TRUE(dry.checkpoint_ok);
    window_first = dry.window_first;
    window_last = dry.window_last;
  }

  int syncs_hit = 0;
  for (std::uint64_t crash_at = window_first; crash_at <= window_last; ++crash_at) {
    SCOPED_TRACE("torn metadata sync at switch op " + std::to_string(crash_at));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    sim::ScriptedFaultSchedule schedule(
        {sim::FaultPoint{crash_at, FaultAction::kCrashTorn, /*read_op=*/false,
                         /*metadata_only=*/true}});
    env.disk().SetFaultInjector(schedule.AsInjector());

    SwitchWindowResult script = RunSwitchScript(env);
    if (schedule.fired_count() == 0) {
      // Op crash_at was a page write, not a metadata sync; the run completed clean.
      EXPECT_TRUE(script.checkpoint_ok);
      continue;
    }
    ++syncs_hit;
    CheckSwitchRecovery(env, script, crash_at);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The switch performs several directory syncs; the metadata-only pass must have
  // actually exercised them.
  EXPECT_GE(syncs_hit, 3);
}

// --- pending-rotation matrix ---
//
// Concurrent checkpointing splits the protocol in two: the rotation (snapshot, empty
// logfile<N+1>, `pending` marker — all inside the update-lock window) and the
// background persist (checkpoint write, switch commit). A fault between the two
// leaves the engine acknowledging updates into the rotated log while the version
// files still name the old generation. This matrix injects a TRANSIENT fault at
// every durable op of the checkpoint window — the process survives and keeps
// committing — and then cuts power. Dual-log recovery (checkpoint N + log N + log
// N+1) must preserve every acknowledged update, at every fault point.
TEST(PendingRotationCrashTest, TransientFaultThenPowerCutIsSafeAtEveryCheckpointOp) {
  std::uint64_t window_first = 0;
  std::uint64_t window_last = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    SwitchWindowResult dry = RunSwitchScript(dry_env);
    ASSERT_TRUE(dry.checkpoint_ok);
    ASSERT_EQ(dry.acknowledged.size(), 6u);
    window_first = dry.window_first;
    window_last = dry.window_last;
  }

  int chain_runs = 0;  // runs that power-cut with a live pending chain
  for (std::uint64_t crash_at = window_first; crash_at <= window_last; ++crash_at) {
    SCOPED_TRACE("transient fault at checkpoint op " + std::to_string(crash_at) +
                 " (window " + std::to_string(window_first) + ".." +
                 std::to_string(window_last) + ")");
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    sim::ScriptedFaultSchedule schedule(
        {sim::FaultPoint{crash_at, FaultAction::kTransientError, /*read_op=*/false,
                         /*metadata_only=*/false}});
    env.disk().SetFaultInjector(schedule.AsInjector());

    SwitchWindowResult script = RunSwitchScript(env);
    EXPECT_EQ(schedule.fired_count(), 1);
    EXPECT_FALSE(script.checkpoint_ok);
    EXPECT_EQ(script.acknowledged.size() + script.failed.size(), 6u);

    // A fault past the switch's commit point poisons the engine (ambiguity
    // fail-stop) and s4..s6 are rejected; any earlier fault aborts cleanly and
    // s4..s6 are acknowledged into whichever log is live. On the clean-abort path
    // the aborted generation must not survive as an orphan (the abort deletes it,
    // and CommitSwitch's later cleanup loop would also collapse it).
    if (script.failed.empty()) {
      auto orphan = env.fs().Exists("db/checkpoint2");
      ASSERT_TRUE(orphan.ok());
      EXPECT_FALSE(*orphan) << "clean persist abort left an orphaned checkpoint";
      auto chain = env.fs().Exists("db/pending");
      ASSERT_TRUE(chain.ok());
      if (*chain) {
        ++chain_runs;  // rotation finished before the fault: the dual-log path
      }
    }

    CheckSwitchRecovery(env, script, crash_at);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The sweep must actually have produced runs where acknowledged updates sat in a
  // rotated log with no checkpoint behind it — the scenario this PR introduces.
  EXPECT_GE(chain_runs, 2);
}

// --- parallel-recovery matrix ---
//
// ISSUE 8: recovery itself can be interrupted. For every crash point of the scripted
// workload, the first reopen (running with recovery_threads = P) is cut down by a
// second power failure, and only the reopen after THAT must land the Section 4
// invariants. Because batched replay merges nothing until every batch succeeded, an
// interrupted parallel recovery leaves the directory exactly as the first crash did —
// re-running it is idempotent at every thread count, and the final state is
// byte-identical to what a serial (threads = 1) recovery of the same directory sees.
class ParallelRecoveryCrashMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRecoveryCrashMatrixTest, InterruptedRecoveryRerunsIdempotently) {
  const int threads = GetParam();

  std::uint64_t total_ops = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    ScriptResult dry = RunScript(dry_env);
    ASSERT_FALSE(dry.crashed);
    total_ops = dry.total_durable_ops;
  }

  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    SCOPED_TRACE("crash at durable op " + std::to_string(crash_at) +
                 ", recovery_threads " + std::to_string(threads));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, FaultAction::kCrashTorn);
    env.disk().SetFaultInjector(plan.AsInjector());

    ScriptResult script = RunScript(env);
    EXPECT_TRUE(plan.fired());

    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());

    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    options.clock = &env.clock();
    options.recovery_threads = threads;

    // First recovery attempt: a parallel replay is in progress when the power fails
    // again (the crash lands on one of the reopen's own durable ops).
    {
      CrashPlan recovery_plan(2, FaultAction::kCrashTorn);
      env.disk().SetFaultInjector(recovery_plan.AsInjector());
      TestApp interrupted;
      Database::Open(interrupted, options).status();  // may fail; that's the point
      env.disk().SetFaultInjector(nullptr);
    }
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());

    // Serial baseline of the directory as it now stands (read-only: no side
    // effects). The earliest crash points can leave a directory with no valid
    // version at all — read-only open cannot bootstrap one, so the baseline is
    // simply "empty state" there (the read-write reopen below starts fresh).
    Bytes serial_snapshot;
    bool have_serial_baseline = false;
    {
      TestApp serial;
      DatabaseOptions serial_options = options;
      serial_options.recovery_threads = 1;
      auto ro = Database::OpenReadOnly(serial, serial_options);
      if (ro.ok()) {
        auto snapshot = serial.SerializeState();
        ASSERT_TRUE(snapshot.ok());
        serial_snapshot = *snapshot;
        have_serial_baseline = true;
      } else {
        ASSERT_TRUE(ro.status().Is(ErrorCode::kNotFound))
            << "serial recovery failed after crash at op " << crash_at << ": "
            << ro.status();
      }
    }

    // The re-run recovery at the parametrized thread count.
    TestApp recovered;
    auto db = Database::Open(recovered, options);
    ASSERT_TRUE(db.ok()) << "recovery failed after crash at op " << crash_at << ": "
                         << db.status();
    if (have_serial_baseline) {
      auto snapshot = recovered.SerializeState();
      ASSERT_TRUE(snapshot.ok());
      EXPECT_EQ(*snapshot, serial_snapshot)
          << "parallel re-run recovery diverged from serial replay (crash at op "
          << crash_at << ")";
    } else {
      EXPECT_TRUE(recovered.state.empty());
    }

    for (const std::string& key : script.acknowledged) {
      ASSERT_EQ(recovered.state.count(key), 1u)
          << "acknowledged update " << key << " lost (crash at op " << crash_at << ")";
      EXPECT_EQ(recovered.state[key], "value-of-" + key);
    }
    for (const std::string& key : script.failed) {
      if (recovered.state.count(key) != 0) {
        EXPECT_EQ(recovered.state[key], "value-of-" + key);
      }
    }
    EXPECT_LE(recovered.state.size(), script.acknowledged.size() + script.failed.size());

    ASSERT_TRUE((*db)->Update(recovered.PreparePut("post-recovery", "works")).ok());
    EXPECT_EQ(recovered.state["post-recovery"], "works");
  }
}

INSTANTIATE_TEST_SUITE_P(AllThreadCounts, ParallelRecoveryCrashMatrixTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "Threads" + std::to_string(param_info.param);
                         });

// --- delta-chain compaction matrix ---
//
// ISSUE 9: with delta checkpoints enabled, a checkpoint publishes a delta on top of
// the chain, and the checkpoint that crosses the compaction threshold additionally
// rewrites the chain inline before returning: compose(base ∘ deltas) -> write a full
// checkpoint at the chain top -> retire the manifest (the commit point) -> reclaim
// the old base and deltas. This matrix brackets that compacting checkpoint's
// durable-op window with a dry run, then crashes at EVERY op inside it, for every
// failure flavour, plus a transient pass (the process survives the fault, keeps
// committing, and only then loses power). After each reopen the acknowledged state
// must be exact and the directory must verify healthy.

DatabaseOptions DeltaChainOptions(SimEnv& env) {
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  options.delta_checkpoint.enabled = true;
  // Inline compaction: the compacting checkpoint's durable ops form one
  // deterministic window the dry run can bracket.
  options.delta_checkpoint.background_compaction = false;
  options.delta_checkpoint.compact_after_deltas = 2;
  options.delta_checkpoint.compact_delta_base_ratio = 0;  // size trigger off
  return options;
}

struct DeltaFailedOp {
  std::string key;
  std::string new_value;  // a failed put is all-or-nothing: absent or exactly this
};

struct DeltaWindowResult {
  std::map<std::string, std::string> model;  // acknowledged state, exact values
  std::vector<DeltaFailedOp> failed;
  std::uint64_t window_first = 0;  // durable-op window of the compacting checkpoint
  std::uint64_t window_last = 0;
  bool checkpoint2_ok = false;
};

// Two generations of churn with a checkpoint between them (chain = checkpoint1 ∘
// delta2 ∘ delta3 the moment the bracketed call crosses the threshold), then more
// updates after the window. Overwrites, a blind delete and fresh keys make the
// composed state differ from every individual chain level.
DeltaWindowResult RunDeltaChainScript(SimEnv& env) {
  DeltaWindowResult result;
  sim::KvApp app;
  DatabaseOptions options = DeltaChainOptions(env);

  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    return result;
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  auto put = [&](const std::string& key, const std::string& value) {
    if (db->Update(app.PreparePut(key, value)).ok()) {
      result.model.insert_or_assign(key, value);
    } else {
      result.failed.push_back({key, value});
    }
  };

  put("a", "a-v1");
  put("b", "b-v1");
  put("hot", "hot-v1");
  if (!db->Checkpoint().ok()) {  // publishes delta2; before the bracketed window
    return result;
  }
  put("a", "a-v2");
  if (db->Update(app.PrepareDelete("b")).ok()) {
    result.model.erase("b");
  } else {
    // Unreachable in this matrix (every fault fires inside the window below); if it
    // ever trips, the mismatched empty value fails the recovery check loudly.
    result.failed.push_back({"b", ""});
  }
  put("c", "c-v1");
  put("hot", "hot-v2");

  // The bracketed call: publishes delta3 (chain length 2) and, having crossed
  // compact_after_deltas = 2, compacts the chain inline before returning.
  result.window_first = env.disk().next_durable_op_sequence();
  result.checkpoint2_ok = db->Checkpoint().ok();
  result.window_last = env.disk().next_durable_op_sequence() - 1;

  put("post1", "post1-v1");
  put("post2", "post2-v1");
  return result;
}

void CheckDeltaChainRecovery(SimEnv& env, const DeltaWindowResult& script,
                             std::uint64_t crash_at) {
  env.disk().SetFaultInjector(nullptr);
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());

  sim::KvApp recovered;
  DatabaseOptions options = DeltaChainOptions(env);
  auto db = Database::Open(recovered, options);
  ASSERT_TRUE(db.ok()) << "recovery failed after crash at op " << crash_at << ": "
                       << db.status();

  // Invariant 1: the acknowledged state is reproduced exactly — base ∘ deltas + log
  // replay must compose to the model, whichever chain files the crash left behind.
  for (const auto& [key, value] : script.model) {
    auto it = recovered.state.find(key);
    ASSERT_NE(it, recovered.state.end())
        << "acknowledged update " << key << " lost (crash at op " << crash_at << ")";
    EXPECT_EQ(it->second, value) << "key " << key << " (crash at op " << crash_at << ")";
  }
  // Invariant 2: a failed put (all on fresh keys in this script) is all-or-nothing.
  for (const DeltaFailedOp& op : script.failed) {
    auto it = recovered.state.find(op.key);
    if (it != recovered.state.end()) {
      EXPECT_EQ(it->second, op.new_value)
          << "unacknowledged update " << op.key << " mangled (crash at op " << crash_at
          << ")";
    }
  }
  // Invariant 3: nothing else crept in.
  for (const auto& [key, value] : recovered.state) {
    bool known = script.model.count(key) != 0;
    for (const DeltaFailedOp& op : script.failed) {
      known = known || op.key == key;
    }
    EXPECT_TRUE(known) << "stray key " << key << " (crash at op " << crash_at << ")";
  }

  // Invariant 4: whatever mix of chain files survived, the reopened directory
  // verifies healthy — recovery either kept a coherent chain or swept it.
  auto report = VerifyDatabaseDir(env.fs(), "db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->healthy()) << "unhealthy directory after crash at op " << crash_at;

  // And the recovered database takes new updates.
  ASSERT_TRUE((*db)->Update(recovered.PreparePut("post-recovery", "works")).ok());
  EXPECT_EQ(recovered.state["post-recovery"], "works");
}

class DeltaCompactionCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaCompactionCrashTest, EveryDurableOpOfPublishAndCompactionIsCrashSafe) {
  FaultAction action = static_cast<FaultAction>(GetParam());

  // Dry run: bracket the window and prove it really contains a full compaction.
  std::uint64_t window_first = 0;
  std::uint64_t window_last = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    DeltaWindowResult dry = RunDeltaChainScript(dry_env);
    ASSERT_TRUE(dry.checkpoint2_ok);
    ASSERT_TRUE(dry.failed.empty());
    // Compaction completed inside the bracketed call: the composed checkpoint sits
    // at the chain top, the manifest is retired, and the old levels are reclaimed.
    ASSERT_TRUE(*dry_env.fs().Exists("db/checkpoint3"));
    ASSERT_FALSE(*dry_env.fs().Exists("db/manifest"));
    ASSERT_FALSE(*dry_env.fs().Exists("db/checkpoint1"));
    ASSERT_FALSE(*dry_env.fs().Exists("db/delta2"));
    ASSERT_FALSE(*dry_env.fs().Exists("db/delta3"));
    window_first = dry.window_first;
    window_last = dry.window_last;
    // Delta write+sync, manifest publish (tmp write, rename, dir sync), the log
    // switch, the compaction rewrite, the manifest retire and the reclaim deletes
    // all sit inside the window.
    ASSERT_GE(window_last - window_first + 1, 8u);
  }

  for (std::uint64_t crash_at = window_first; crash_at <= window_last; ++crash_at) {
    SCOPED_TRACE("crash at chain op " + std::to_string(crash_at) + " (window " +
                 std::to_string(window_first) + ".." + std::to_string(window_last) +
                 ")");
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());

    DeltaWindowResult script = RunDeltaChainScript(env);
    EXPECT_TRUE(plan.fired());

    CheckDeltaChainRecovery(env, script, crash_at);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChainFaultFlavours, DeltaCompactionCrashTest,
                         ::testing::Values(static_cast<int>(FaultAction::kCrashBefore),
                                           static_cast<int>(FaultAction::kCrashTorn),
                                           static_cast<int>(FaultAction::kCrashAfter)),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           switch (static_cast<FaultAction>(param_info.param)) {
                             case FaultAction::kCrashBefore:
                               return std::string("Before");
                             case FaultAction::kCrashTorn:
                               return std::string("Torn");
                             case FaultAction::kCrashAfter:
                               return std::string("After");
                             default:
                               return std::string("None");
                           }
                         });

TEST(DeltaCompactionCrashTest, TransientFaultThenPowerCutIsSafeAtEveryChainOp) {
  // The process survives a transient write fault at each durable op of the window —
  // a failed delta publication aborts cleanly, a failed compaction only logs (the
  // checkpoint that triggered it still commits) — keeps committing, then loses
  // power. Recovery must land the same invariants at every fault point.
  std::uint64_t window_first = 0;
  std::uint64_t window_last = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry_env(env_options);
    DeltaWindowResult dry = RunDeltaChainScript(dry_env);
    ASSERT_TRUE(dry.checkpoint2_ok);
    window_first = dry.window_first;
    window_last = dry.window_last;
  }

  int compaction_faults = 0;  // faults the checkpoint survived (landed in compaction)
  for (std::uint64_t crash_at = window_first; crash_at <= window_last; ++crash_at) {
    SCOPED_TRACE("transient fault at chain op " + std::to_string(crash_at) +
                 " (window " + std::to_string(window_first) + ".." +
                 std::to_string(window_last) + ")");
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    sim::ScriptedFaultSchedule schedule(
        {sim::FaultPoint{crash_at, FaultAction::kTransientError, /*read_op=*/false,
                         /*metadata_only=*/false}});
    env.disk().SetFaultInjector(schedule.AsInjector());

    DeltaWindowResult script = RunDeltaChainScript(env);
    EXPECT_EQ(schedule.fired_count(), 1);
    if (script.checkpoint2_ok) {
      // The fault landed inside the inline compaction, which must never fail the
      // checkpoint that triggered it — the chain stays live until a later attempt.
      ++compaction_faults;
    }

    CheckDeltaChainRecovery(env, script, crash_at);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The sweep must actually have hit compaction's own durable ops, not only the
  // delta publication in front of them.
  EXPECT_GE(compaction_faults, 3);
}

TEST(CrashMatrixDoubleFailureTest, CrashDuringRecoveryIsAlsoSafe) {
  // Crash once mid-script, then crash AGAIN during the recovery-time cleanup, then
  // recover fully. The protocol must tolerate repeated failures.
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  {
    CrashPlan plan(25, FaultAction::kCrashTorn);
    env.disk().SetFaultInjector(plan.AsInjector());
    RunScript(env);
    env.disk().SetFaultInjector(nullptr);
  }
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());

  // Second crash: during the first reopen.
  {
    CrashPlan plan(3, FaultAction::kCrashBefore);
    env.disk().SetFaultInjector(plan.AsInjector());
    TestApp app;
    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    Database::Open(app, options).status();  // may fail; that's the point
    env.disk().SetFaultInjector(nullptr);
  }
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());

  TestApp final_app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db = Database::Open(final_app, options);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->Update(final_app.PreparePut("alive", "yes")).ok());
  EXPECT_EQ(final_app.state["alive"], "yes");
}

}  // namespace
}  // namespace sdb
