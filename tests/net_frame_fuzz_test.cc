// Corruption fuzzing for the wire frame codec, in the style of pickle_fuzz_test:
// flip every byte, truncate at every length, and feed seeded garbage. FrameDecoder
// must always return a clean error or the exact original frame — never crash, hang,
// or accept a bogus frame. The CRC covers header and payload, so unlike the pickle
// envelope NO single byte flip may ever decode.
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/frame.h"

namespace sdb::net {
namespace {

Frame SampleFrame() {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = 0xDEADBEEF12345678ull;
  const std::string payload = "service.method request body with some entropy \x01\x02";
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

bool SameFrame(const Frame& a, const Frame& b) {
  return a.type == b.type && a.flags == b.flags && a.request_id == b.request_id &&
         a.payload == b.payload;
}

// One decode attempt over a complete buffer: ok+frame, ok+need-more, or error.
Result<std::optional<Frame>> DecodeOnce(ByteSpan wire) {
  FrameDecoder decoder;
  decoder.Feed(wire);
  return decoder.Next();
}

TEST(NetFrameFuzzTest, EveryByteFlipIsRejected) {
  const Frame original = SampleFrame();
  const Bytes wire = EncodeFrame(original);
  ASSERT_GT(wire.size(), kFrameHeaderSize);

  for (std::size_t index = 0; index < wire.size(); ++index) {
    for (std::uint8_t flip :
         {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
      Bytes corrupted = wire;
      corrupted[index] ^= flip;
      Result<std::optional<Frame>> decoded = DecodeOnce(AsSpan(corrupted));
      // A flip may condemn the stream (error) or make the header claim a longer
      // payload than was sent (need-more) — but it must NEVER produce a frame:
      // the CRC covers every header byte and every payload byte.
      if (decoded.ok() && decoded->has_value()) {
        ADD_FAILURE() << "byte " << index << " flipped with 0x" << std::hex
                      << int{flip} << " still decoded as a complete frame";
      }
    }
  }
}

TEST(NetFrameFuzzTest, EveryTruncationAsksForMoreOrFails) {
  const Frame original = SampleFrame();
  const Bytes wire = EncodeFrame(original);

  for (std::size_t length = 0; length < wire.size(); ++length) {
    Result<std::optional<Frame>> decoded = DecodeOnce(ByteSpan(wire.data(), length));
    if (decoded.ok()) {
      EXPECT_FALSE(decoded->has_value())
          << "truncation to " << length << " bytes decoded as complete";
    }
    // An error is also acceptable once the (complete) header itself is mangled by
    // the cut — but with an intact prefix the decoder just waits for more bytes.
    if (length >= kFrameHeaderSize) {
      ASSERT_TRUE(decoded.ok()) << "intact header at length " << length
                                << " was condemned: " << decoded.status().ToString();
    }
  }

  // The full buffer then decodes to the exact original.
  Result<std::optional<Frame>> whole = DecodeOnce(AsSpan(wire));
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_TRUE(whole->has_value());
  EXPECT_TRUE(SameFrame(**whole, original));
}

TEST(NetFrameFuzzTest, ByteAtATimeFeedReassemblesExactly) {
  // The decoder is incremental by design: feeding one byte at a time across two
  // back-to-back frames must produce both frames, in order, bit-identical.
  Frame first = SampleFrame();
  Frame second = SampleFrame();
  second.type = FrameType::kResponse;
  second.request_id = 7;
  second.payload.assign(300, std::uint8_t{0xAB});
  Bytes wire = EncodeFrame(first);
  AppendFrame(second, wire);

  FrameDecoder decoder;
  std::vector<Frame> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    decoder.Feed(ByteSpan(wire.data() + i, 1));
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << "byte " << i << ": " << next.status().ToString();
      if (!next->has_value()) {
        break;
      }
      got.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(SameFrame(got[0], first));
  EXPECT_TRUE(SameFrame(got[1], second));
}

TEST(NetFrameFuzzTest, SeededGarbageNeverCrashesOrDecodes) {
  const Frame original = SampleFrame();
  const Bytes wire = EncodeFrame(original);
  Rng rng(0xF4A3E5EED);

  for (int round = 0; round < 2000; ++round) {
    Bytes mutant;
    if (rng.NextBool(0.5)) {
      mutant.resize(rng.NextBelow(2 * wire.size() + 1));
      for (auto& byte : mutant) {
        byte = static_cast<std::uint8_t>(rng.NextBelow(256));
      }
    } else {
      // A valid frame with 1-8 random byte mutations — the adversarial shape.
      mutant = wire;
      std::uint64_t mutations = 1 + rng.NextBelow(8);
      for (std::uint64_t i = 0; i < mutations && !mutant.empty(); ++i) {
        mutant[rng.NextBelow(mutant.size())] =
            static_cast<std::uint8_t>(rng.NextBelow(256));
      }
    }
    Result<std::optional<Frame>> decoded = DecodeOnce(AsSpan(mutant));
    if (decoded.ok() && decoded->has_value()) {
      // The only acceptable decode is the byte-identical original (possible when
      // every mutation landed on bytes past a truncation point, i.e. never).
      EXPECT_TRUE(SameFrame(**decoded, original)) << "round " << round;
      EXPECT_EQ(mutant.size(), wire.size()) << "round " << round;
    }
  }
}

TEST(NetFrameFuzzTest, CondemnedStreamStaysCondemned) {
  // After one corrupt frame the stream is unrecoverable by design (length framing
  // can no longer be trusted): Next keeps returning the same error even if a clean
  // frame is fed afterwards.
  Bytes wire = EncodeFrame(SampleFrame());
  wire[0] ^= 0xFF;  // destroy the magic
  FrameDecoder decoder;
  decoder.Feed(AsSpan(wire));
  Result<std::optional<Frame>> first = decoder.Next();
  ASSERT_FALSE(first.ok());
  decoder.Feed(AsSpan(EncodeFrame(SampleFrame())));
  Result<std::optional<Frame>> second = decoder.Next();
  EXPECT_FALSE(second.ok());
}

TEST(NetFrameFuzzTest, OversizedPayloadLengthIsRejectedBeforeBuffering) {
  // A header claiming a payload beyond the decoder's cap must condemn the stream
  // immediately — not wait for 16MiB that will never arrive.
  Frame frame = SampleFrame();
  Bytes wire = EncodeFrame(frame);
  FrameDecoder decoder(/*max_payload=*/16);
  decoder.Feed(AsSpan(wire));
  Result<std::optional<Frame>> decoded = decoder.Next();
  EXPECT_FALSE(decoded.ok());
}

TEST(NetFrameFuzzTest, ChunkedResponsesRoundTripAtEveryChunkSize) {
  Bytes payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{256},
                            std::size_t{999}, std::size_t{1000}, std::size_t{4096}}) {
    std::vector<Frame> frames = ChunkResponse(42, AsSpan(payload), chunk);
    ASSERT_FALSE(frames.empty());
    Bytes wire;
    for (const Frame& frame : frames) {
      AppendFrame(frame, wire);
    }
    FrameDecoder decoder;
    decoder.Feed(AsSpan(wire));
    Bytes assembled;
    bool final_seen = false;
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) {
        break;
      }
      EXPECT_FALSE(final_seen) << "frames after the final chunk";
      EXPECT_EQ((*next)->request_id, 42u);
      assembled.insert(assembled.end(), (*next)->payload.begin(),
                       (*next)->payload.end());
      final_seen = (*next)->type == FrameType::kResponse || (*next)->final_chunk();
    }
    EXPECT_TRUE(final_seen) << "chunk size " << chunk;
    EXPECT_EQ(assembled, payload) << "chunk size " << chunk;
  }
}

}  // namespace
}  // namespace sdb::net
