// Unit tests for SimFs: caching, fsync durability, crash/recover, namespace
// durability, hard-error injection.
#include <gtest/gtest.h>

#include "src/storage/sim_env.h"
#include "src/storage/sim_fs.h"

namespace sdb {
namespace {

class SimFsTest : public ::testing::Test {
 protected:
  SimFsTest() {
    SimEnvOptions options;
    options.disk.page_size = 64;
    options.disk.capacity_pages = 4096;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  SimFs& fs() { return env_->fs(); }
  SimDisk& disk() { return env_->disk(); }

  Status CreateWithContent(std::string_view path, std::string_view content, bool sync) {
    SDB_ASSIGN_OR_RETURN(auto file, fs().Open(path, OpenMode::kTruncate));
    SDB_RETURN_IF_ERROR(file->Append(AsSpan(content)));
    if (sync) {
      SDB_RETURN_IF_ERROR(file->Sync());
    }
    return file->Close();
  }

  Result<std::string> Read(std::string_view path) {
    SDB_ASSIGN_OR_RETURN(Bytes data, ReadWholeFile(fs(), path));
    return std::string(AsStringView(AsSpan(data)));
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(SimFsTest, CreateWriteReadBack) {
  ASSERT_TRUE(CreateWithContent("f", "hello world", true).ok());
  EXPECT_EQ(*Read("f"), "hello world");
}

TEST_F(SimFsTest, OpenMissingFileFails) {
  EXPECT_TRUE(fs().Open("nope", OpenMode::kRead).status().Is(ErrorCode::kNotFound));
}

TEST_F(SimFsTest, CreateExclusiveFailsIfPresent) {
  ASSERT_TRUE(CreateWithContent("f", "x", true).ok());
  EXPECT_TRUE(fs().Open("f", OpenMode::kCreateExclusive).status().Is(ErrorCode::kAlreadyExists));
}

TEST_F(SimFsTest, TruncateModeWipesContent) {
  ASSERT_TRUE(CreateWithContent("f", "old content", true).ok());
  ASSERT_TRUE(CreateWithContent("f", "", true).ok());
  EXPECT_EQ(*Read("f"), "");
}

TEST_F(SimFsTest, ReadOnlyHandleRejectsWrites) {
  ASSERT_TRUE(CreateWithContent("f", "x", true).ok());
  auto file = *fs().Open("f", OpenMode::kRead);
  EXPECT_TRUE(file->Append(AsSpan(std::string_view("y"))).Is(ErrorCode::kInvalidArgument));
}

TEST_F(SimFsTest, AppendExtendsAcrossPages) {
  auto file = *fs().Open("f", OpenMode::kTruncate);
  std::string chunk(50, 'a');
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(file->Append(AsSpan(chunk)).ok());
  }
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(*file->Size(), 250u);
  Bytes out = *file->ReadAt(100, 50);
  EXPECT_EQ(out, Bytes(50, 'a'));
}

TEST_F(SimFsTest, WriteAtOverwritesInPlace) {
  ASSERT_TRUE(CreateWithContent("f", "aaaaaaaaaa", true).ok());
  auto file = *fs().Open("f", OpenMode::kReadWrite);
  ASSERT_TRUE(file->WriteAt(3, AsSpan(std::string_view("ZZ"))).ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(*Read("f"), "aaaZZaaaaa");
}

TEST_F(SimFsTest, ReadAtEndOfFileIsShort) {
  ASSERT_TRUE(CreateWithContent("f", "abc", true).ok());
  auto file = *fs().Open("f", OpenMode::kRead);
  EXPECT_EQ((*file->ReadAt(2, 100)).size(), 1u);
  EXPECT_EQ((*file->ReadAt(3, 100)).size(), 0u);
  EXPECT_EQ((*file->ReadAt(99, 100)).size(), 0u);
}

TEST_F(SimFsTest, TruncateShrinksAndZeroExtends) {
  ASSERT_TRUE(CreateWithContent("f", "abcdef", true).ok());
  auto file = *fs().Open("f", OpenMode::kReadWrite);
  ASSERT_TRUE(file->Truncate(3).ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(*Read("f"), "abc");
  ASSERT_TRUE(file->Truncate(5).ok());
  ASSERT_TRUE(file->Sync().ok());
  Bytes data = *ReadWholeFile(fs(), "f");
  EXPECT_EQ(data, (Bytes{'a', 'b', 'c', 0, 0}));
}

// --- crash semantics ---

TEST_F(SimFsTest, UnsyncedContentLostOnCrash) {
  ASSERT_TRUE(CreateWithContent("f", "synced", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  {
    auto file = *fs().Open("f", OpenMode::kReadWrite);
    ASSERT_TRUE(file->Append(AsSpan(std::string_view(" unsynced"))).ok());
    // no Sync
  }
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_EQ(*Read("f"), "synced");
}

TEST_F(SimFsTest, SyncedContentSurvivesCrash) {
  ASSERT_TRUE(CreateWithContent("f", "durable data", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_EQ(*Read("f"), "durable data");
}

TEST_F(SimFsTest, UnsyncedCreateLostOnCrash) {
  ASSERT_TRUE(CreateWithContent("f", "content", true).ok());
  // No SyncDir: the namespace entry is volatile.
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_FALSE(*fs().Exists("f"));
}

TEST_F(SimFsTest, UnsyncedDeleteRevertsOnCrash) {
  ASSERT_TRUE(CreateWithContent("f", "keep me", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  ASSERT_TRUE(fs().Delete("f").ok());
  EXPECT_FALSE(*fs().Exists("f"));
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_TRUE(*fs().Exists("f"));
  EXPECT_EQ(*Read("f"), "keep me");
}

TEST_F(SimFsTest, UnsyncedRenameRevertsOnCrash) {
  ASSERT_TRUE(CreateWithContent("a", "data", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  ASSERT_TRUE(fs().Rename("a", "b").ok());
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_TRUE(*fs().Exists("a"));
  EXPECT_FALSE(*fs().Exists("b"));
}

TEST_F(SimFsTest, SyncedRenameSurvivesCrash) {
  ASSERT_TRUE(CreateWithContent("a", "data", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  ASSERT_TRUE(fs().Rename("a", "b").ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_FALSE(*fs().Exists("a"));
  EXPECT_EQ(*Read("b"), "data");
}

TEST_F(SimFsTest, RenameReplacesTarget) {
  ASSERT_TRUE(CreateWithContent("a", "new", true).ok());
  ASSERT_TRUE(CreateWithContent("b", "old", true).ok());
  ASSERT_TRUE(fs().Rename("a", "b").ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  EXPECT_EQ(*Read("b"), "new");
  EXPECT_FALSE(*fs().Exists("a"));
}

TEST_F(SimFsTest, StaleHandleRefusedAfterRecover) {
  ASSERT_TRUE(CreateWithContent("f", "x", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  auto file = *fs().Open("f", OpenMode::kRead);
  fs().Crash();
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_TRUE(file->ReadAt(0, 1).status().Is(ErrorCode::kIoError));
}

TEST_F(SimFsTest, OperationsFailWhileCrashed) {
  fs().Crash();
  EXPECT_TRUE(fs().Open("f", OpenMode::kCreate).status().Is(ErrorCode::kIoError));
  EXPECT_TRUE(fs().Delete("f").Is(ErrorCode::kIoError));
  EXPECT_TRUE(fs().SyncDir("").Is(ErrorCode::kIoError));
}

TEST_F(SimFsTest, TornPageDuringSyncIsUnreadableAfterRecover) {
  // Write two pages of synced data, then rewrite the first page and tear it.
  std::string page0(64, 'A');
  std::string page1(64, 'B');
  ASSERT_TRUE(CreateWithContent("f", page0 + page1, true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());

  CrashPlan plan(disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
  disk().SetFaultInjector(plan.AsInjector());
  auto file = *fs().Open("f", OpenMode::kReadWrite);
  ASSERT_TRUE(file->WriteAt(0, AsSpan(std::string(64, 'C'))).ok());
  EXPECT_FALSE(file->Sync().ok());
  EXPECT_TRUE(plan.fired());

  disk().SetFaultInjector(nullptr);
  ASSERT_TRUE(fs().Recover().ok());
  auto reopened = *fs().Open("f", OpenMode::kRead);
  // The torn page reports an error; the untouched page is fine.
  EXPECT_TRUE(reopened->ReadAt(0, 64).status().Is(ErrorCode::kUnreadable));
  Bytes ok_page = *reopened->ReadAt(64, 64);
  EXPECT_EQ(ok_page, Bytes(64, 'B'));
}

TEST_F(SimFsTest, CrashMidMultiPageSyncKeepsOldSize) {
  // Append spanning 3 pages; crash on the second page write. After recovery the file
  // must have its old (durable) size — the incomplete append is invisible.
  ASSERT_TRUE(CreateWithContent("f", "tiny", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());

  auto file = *fs().Open("f", OpenMode::kReadWrite);
  ASSERT_TRUE(file->Append(AsSpan(std::string(200, 'X'))).ok());
  CrashPlan plan(disk().next_durable_op_sequence() + 1, FaultAction::kCrashBefore);
  disk().SetFaultInjector(plan.AsInjector());
  EXPECT_FALSE(file->Sync().ok());

  disk().SetFaultInjector(nullptr);
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_EQ(*Read("f"), "tiny");
}

TEST_F(SimFsTest, ListReturnsFilesUnderDir) {
  ASSERT_TRUE(CreateWithContent("db/checkpoint1", "c", true).ok());
  ASSERT_TRUE(CreateWithContent("db/logfile1", "l", true).ok());
  ASSERT_TRUE(CreateWithContent("other/file", "o", true).ok());
  auto listing = *fs().List("db");
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0], "checkpoint1");
  EXPECT_EQ(listing[1], "logfile1");
}

TEST_F(SimFsTest, PendingMetadataOpsTracked) {
  EXPECT_EQ(fs().pending_metadata_ops(), 0u);
  ASSERT_TRUE(CreateWithContent("f", "", true).ok());
  EXPECT_GT(fs().pending_metadata_ops(), 0u);
  ASSERT_TRUE(fs().SyncDir("").ok());
  EXPECT_EQ(fs().pending_metadata_ops(), 0u);
}

TEST_F(SimFsTest, DropCachesRefusesWithDirtyData) {
  auto file = *fs().Open("f", OpenMode::kTruncate);
  ASSERT_TRUE(file->Append(AsSpan(std::string_view("dirty"))).ok());
  EXPECT_TRUE(fs().DropCaches().Is(ErrorCode::kFailedPrecondition));
}

TEST_F(SimFsTest, DropCachesRereadsFromDisk) {
  ASSERT_TRUE(CreateWithContent("f", "content", true).ok());
  ASSERT_TRUE(fs().SyncDir("").ok());
  SimDiskStats before = disk().stats();
  ASSERT_TRUE(fs().DropCaches().ok());
  EXPECT_GT(disk().stats().page_reads, before.page_reads);
  EXPECT_EQ(*Read("f"), "content");
}

TEST_F(SimFsTest, InjectBadFilePageSurfacesHardError) {
  std::string two_pages(128, 'D');
  ASSERT_TRUE(CreateWithContent("f", two_pages, true).ok());
  ASSERT_TRUE(fs().InjectBadFilePage("f", 1).ok());
  auto file = *fs().Open("f", OpenMode::kRead);
  EXPECT_TRUE(file->ReadAt(0, 128).status().Is(ErrorCode::kUnreadable));
  Bytes first = *file->ReadAt(0, 64);
  EXPECT_EQ(first, Bytes(64, 'D'));
}

TEST_F(SimFsTest, RewritingRepairsInjectedBadPage) {
  std::string two_pages(128, 'D');
  ASSERT_TRUE(CreateWithContent("f", two_pages, true).ok());
  ASSERT_TRUE(fs().InjectBadFilePage("f", 1).ok());
  auto file = *fs().Open("f", OpenMode::kReadWrite);
  ASSERT_TRUE(file->WriteAt(64, AsSpan(std::string(64, 'E'))).ok());
  ASSERT_TRUE(file->Sync().ok());
  Bytes repaired = *file->ReadAt(64, 64);
  EXPECT_EQ(repaired, Bytes(64, 'E'));
}

TEST_F(SimFsTest, CrashDuringDirectorySyncLosesPendingMetadata) {
  ASSERT_TRUE(CreateWithContent("f", "x", true).ok());
  CrashPlan plan(disk().next_durable_op_sequence(), FaultAction::kCrashBefore);
  disk().SetFaultInjector(plan.AsInjector());
  EXPECT_FALSE(fs().SyncDir("").ok());
  disk().SetFaultInjector(nullptr);
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_FALSE(*fs().Exists("f"));
}

TEST_F(SimFsTest, CrashAfterDirectorySyncKeepsMetadata) {
  ASSERT_TRUE(CreateWithContent("f", "x", true).ok());
  CrashPlan plan(disk().next_durable_op_sequence(), FaultAction::kCrashAfter);
  disk().SetFaultInjector(plan.AsInjector());
  EXPECT_FALSE(fs().SyncDir("").ok());  // the crash is reported...
  disk().SetFaultInjector(nullptr);
  ASSERT_TRUE(fs().Recover().ok());
  EXPECT_TRUE(*fs().Exists("f"));  // ...but the sync had completed
  EXPECT_EQ(*Read("f"), "x");
}

}  // namespace
}  // namespace sdb
