// Differential replay: parallel recovery must be *equivalent* to serial replay —
// not approximately, byte-for-byte. A seeded workload builds a directory; the same
// directory is then recovered with recovery_threads in {1, 2, 4, 8} and the pickled
// application snapshot after each recovery is asserted identical to the serial
// baseline. The matrix covers every log layout the engine can leave behind: a plain
// checkpoint+log, a pending dual-log chain (rotation survived, persist did not), the
// shared-log ensemble (per-partition replay_from offsets), and the sharded engine
// (across-shard x within-shard parallelism through one pool).
//
// The suite name contains "Concurrent" on the batch-dispatch tests so the CI
// thread-sanitizer job (filter *Concurrent*:*Parallel*) exercises the pool.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/core/parallel_replay.h"
#include "src/core/shared_log.h"
#include "src/core/sharded.h"
#include "src/pickle/pickle.h"
#include "src/sim/kv_app.h"
#include "src/sim/workload.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::sim::GenerateWorkload;
using ::sdb::sim::KvApp;
using ::sdb::sim::StepKind;
using ::sdb::sim::WorkloadOptions;
using ::sdb::sim::WorkloadStep;
using ::sdb::testing::TestApp;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

// A replay-heavy mix: no reads, no restarts — just puts, deletes, and the odd
// checkpoint so recovery sees a checkpoint base plus a long log tail.
WorkloadOptions ReplayMix(int steps) {
  WorkloadOptions options;
  options.steps = steps;
  options.clients = 3;
  options.keyspace = 24;  // few keys over many steps: same-key entries collide
  options.put_weight = 0.62;
  options.delete_weight = 0.28;
  options.checkpoint_weight = 0.10;
  options.lookup_weight = 0;
  options.enumerate_weight = 0;
  options.backup_weight = 0;
  options.restart_weight = 0;
  return options;
}

DatabaseOptions BaseOptions(SimEnv& env) {
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  return options;
}

// Drives the seeded steps into one Database. Checkpoint steps are executed too, so
// some runs recover from checkpoint N + log tail rather than log-only.
void BuildDatabaseDir(SimEnv& env, std::uint64_t seed, int steps) {
  KvApp app;
  auto db = Database::Open(app, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  for (const WorkloadStep& step : GenerateWorkload(seed, ReplayMix(steps))) {
    switch (step.kind) {
      case StepKind::kPut:
        ASSERT_TRUE((*db)->Update(app.PreparePut(step.key, step.value)).ok());
        break;
      case StepKind::kDelete:
        ASSERT_TRUE((*db)->Update(app.PrepareDelete(step.key)).ok());
        break;
      case StepKind::kCheckpoint:
        ASSERT_TRUE((*db)->Checkpoint().ok());
        break;
      default:
        break;
    }
  }
}

// Recovers `dir` read-only (zero directory side effects, so the same directory can
// be recovered any number of times) and returns the pickled snapshot.
Bytes RecoverSnapshot(SimEnv& env, int threads, RestartBreakdown* breakdown = nullptr) {
  KvApp app;
  DatabaseOptions options = BaseOptions(env);
  options.recovery_threads = threads;
  auto db = Database::OpenReadOnly(app, options);
  EXPECT_TRUE(db.ok()) << "recovery_threads=" << threads << ": " << db.status();
  if (!db.ok()) {
    return {};
  }
  if (breakdown != nullptr) {
    *breakdown = (*db)->stats().restart;
  }
  auto snapshot = app.SerializeState();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  return snapshot.ok() ? *snapshot : Bytes{};
}

TEST(ParallelRecoveryTest, EveryThreadCountRecoversByteIdenticalState) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    BuildDatabaseDir(env, seed, /*steps=*/400);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }

    RestartBreakdown serial;
    Bytes baseline = RecoverSnapshot(env, /*threads=*/1, &serial);
    ASSERT_FALSE(baseline.empty());
    EXPECT_EQ(serial.replay_batches, 0u);        // serial mode dispatches no batches
    EXPECT_EQ(serial.replay_threads_used, 1u);
    EXPECT_EQ(serial.replay_cpu_micros, serial.replay_micros);

    for (int threads : kThreadCounts) {
      SCOPED_TRACE("recovery_threads " + std::to_string(threads));
      RestartBreakdown breakdown;
      Bytes snapshot = RecoverSnapshot(env, threads, &breakdown);
      EXPECT_EQ(snapshot, baseline);
      EXPECT_EQ(breakdown.entries_replayed, serial.entries_replayed);
      if (threads > 1 && breakdown.entries_replayed > 0) {
        EXPECT_GT(breakdown.replay_batches, 0u);
        EXPECT_GE(breakdown.replay_threads_used, 1u);
        EXPECT_LE(breakdown.replay_threads_used, static_cast<std::uint64_t>(threads));
        // The accounting split (satellite of ISSUE 8): wall-clock elapsed and
        // aggregate CPU are separate numbers, and the CPU figure is exactly the
        // sequential pass plus the summed worker apply time.
        EXPECT_EQ(breakdown.replay_cpu_micros,
                  breakdown.partition_pass_micros + breakdown.batch_apply_micros);
        EXPECT_GE(breakdown.replay_micros, 0);
      }
    }
  }
}

// Forwarding Vfs that fails Open of one exact path while set — the idiom that leaves
// a pending dual-log chain behind (rotation succeeded, background persist did not).
class FailingVfs : public Vfs {
 public:
  explicit FailingVfs(Vfs& base) : base_(base) {}

  std::string fail_open_path;

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override {
    if (!fail_open_path.empty() && path == fail_open_path) {
      return IoError("injected open failure");
    }
    return base_.Open(path, mode);
  }
  Status Delete(std::string_view path) override { return base_.Delete(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return base_.Rename(from, to);
  }
  Result<bool> Exists(std::string_view path) override { return base_.Exists(path); }
  Result<std::vector<std::string>> List(std::string_view dir) override {
    return base_.List(dir);
  }
  Status CreateDir(std::string_view path) override { return base_.CreateDir(path); }
  Status SyncDir(std::string_view dir) override { return base_.SyncDir(dir); }

 private:
  Vfs& base_;
};

TEST(ParallelRecoveryTest, PendingChainRecoversByteIdenticalAtEveryThreadCount) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  FailingVfs vfs(env.fs());
  {
    KvApp app;
    DatabaseOptions options = BaseOptions(env);
    options.vfs = &vfs;
    auto db = Database::Open(app, options);
    ASSERT_TRUE(db.ok()) << db.status();
    // Entries in log 1, then a failed persist strands log 2 behind the pending
    // marker, then more entries (same keys again: cross-log per-key ordering is
    // exactly what the chain replay must preserve).
    for (int i = 0; i < 60; ++i) {
      std::string key = "k" + std::to_string(i % 12);
      ASSERT_TRUE((*db)->Update(app.PreparePut(key, "gen1-" + std::to_string(i))).ok());
    }
    // Checkpoint 2 is a delta (KvApp supports delta capture), so fail its file.
    vfs.fail_open_path = "db/delta2";
    EXPECT_FALSE((*db)->Checkpoint().ok());
    vfs.fail_open_path.clear();
    for (int i = 0; i < 60; ++i) {
      std::string key = "k" + std::to_string(i % 12);
      if (i % 3 == 0) {
        ASSERT_TRUE((*db)->Update(app.PrepareDelete(key)).ok());
      } else {
        ASSERT_TRUE((*db)->Update(app.PreparePut(key, "gen2-" + std::to_string(i))).ok());
      }
    }
  }
  ASSERT_TRUE(*env.fs().Exists("db/pending"));

  RestartBreakdown serial;
  Bytes baseline = RecoverSnapshot(env, /*threads=*/1, &serial);
  ASSERT_FALSE(baseline.empty());
  ASSERT_EQ(serial.pending_logs_replayed, 1u);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE("recovery_threads " + std::to_string(threads));
    RestartBreakdown breakdown;
    Bytes snapshot = RecoverSnapshot(env, threads, &breakdown);
    EXPECT_EQ(snapshot, baseline);
    EXPECT_EQ(breakdown.pending_logs_replayed, 1u);
    EXPECT_EQ(breakdown.entries_replayed, serial.entries_replayed);
  }
}

// Shared-log ensemble: the directory is rebuilt identically per thread count (the
// simulated environment is deterministic), then recovered once. Partition 0
// checkpoints midway so the replay must honour its replay_from offset — skipped
// entries must never reach the replayer's batches.
TEST(ParallelRecoveryConcurrentTest, SharedLogEnsembleRecoversIdenticallyAtEveryThreadCount) {
  constexpr int kPartitions = 3;
  auto build_and_recover = [&](int threads, std::vector<Bytes>* snapshots,
                               SharedLogStats* stats) {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    std::vector<std::unique_ptr<TestApp>> apps;
    std::vector<Application*> raw;
    for (int i = 0; i < kPartitions; ++i) {
      apps.push_back(std::make_unique<TestApp>());
      raw.push_back(apps.back().get());
    }
    SharedLogOptions options;
    options.vfs = &env.fs();
    options.dir = "ensemble";
    options.clock = &env.clock();
    {
      auto db = SharedLogDatabase::Open(raw, options);
      ASSERT_TRUE(db.ok()) << db.status();
      for (int i = 0; i < 90; ++i) {
        int p = i % kPartitions;
        std::string key = "k" + std::to_string(i % 10);
        ASSERT_TRUE(
            (*db)->Update(p, apps[p]->PreparePut(key, "v" + std::to_string(i))).ok());
        if (i == 45) {
          ASSERT_TRUE((*db)->Checkpoint(0).ok());
        }
      }
    }
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());
    for (auto& app : apps) {
      app->state.clear();
    }
    options.recovery_threads = threads;
    auto db = SharedLogDatabase::Open(raw, options);
    ASSERT_TRUE(db.ok()) << "recovery_threads=" << threads << ": " << db.status();
    *stats = (*db)->stats();
    snapshots->clear();
    for (auto& app : apps) {
      auto snapshot = app->SerializeState();
      ASSERT_TRUE(snapshot.ok()) << snapshot.status();
      snapshots->push_back(*snapshot);
    }
  };

  std::vector<Bytes> baseline;
  SharedLogStats serial;
  build_and_recover(1, &baseline, &serial);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  ASSERT_GT(serial.replay_skipped_entries, 0u);  // the offset path is exercised

  for (int threads : kThreadCounts) {
    SCOPED_TRACE("recovery_threads " + std::to_string(threads));
    std::vector<Bytes> snapshots;
    SharedLogStats stats;
    build_and_recover(threads, &snapshots, &stats);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    EXPECT_EQ(snapshots, baseline);
    EXPECT_EQ(stats.replayed_entries, serial.replayed_entries);
    EXPECT_EQ(stats.replay_skipped_entries, serial.replay_skipped_entries);
  }
}

// Sharded engine: across-shard parallelism composes with within-shard key batches
// through the single shared pool.
TEST(ParallelRecoveryConcurrentTest, ShardedEnsembleRecoversIdenticallyAtEveryThreadCount) {
  constexpr int kShards = 4;
  auto build_and_recover = [&](int threads, std::vector<Bytes>* snapshots,
                               ShardedStats* stats) {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    std::vector<std::unique_ptr<TestApp>> apps;
    std::vector<Application*> raw;
    for (int i = 0; i < kShards; ++i) {
      apps.push_back(std::make_unique<TestApp>());
      raw.push_back(apps.back().get());
    }
    ShardedOptions options;
    options.vfs = &env.fs();
    options.dir = "ensemble";
    options.clock = &env.clock();
    {
      auto db = ShardedDatabase::Open(raw, options);
      ASSERT_TRUE(db.ok()) << db.status();
      for (int i = 0; i < 120; ++i) {
        std::string key = "k" + std::to_string(i % 17);
        std::size_t shard = (*db)->ShardForKey(key);
        ASSERT_TRUE(
            (*db)->UpdateKey(key, apps[shard]->PreparePut(key, "v" + std::to_string(i)))
                .ok());
      }
    }
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());
    for (auto& app : apps) {
      app->state.clear();
    }
    options.recovery_threads = threads;
    auto db = ShardedDatabase::Open(raw, options);
    ASSERT_TRUE(db.ok()) << "recovery_threads=" << threads << ": " << db.status();
    *stats = (*db)->stats();
    snapshots->clear();
    for (auto& app : apps) {
      auto snapshot = app->SerializeState();
      ASSERT_TRUE(snapshot.ok()) << snapshot.status();
      snapshots->push_back(*snapshot);
    }
  };

  std::vector<Bytes> baseline;
  ShardedStats serial;
  build_and_recover(1, &baseline, &serial);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  EXPECT_EQ(serial.replay_batches, 0u);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE("recovery_threads " + std::to_string(threads));
    std::vector<Bytes> snapshots;
    ShardedStats stats;
    build_and_recover(threads, &snapshots, &stats);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    EXPECT_EQ(snapshots, baseline);
    EXPECT_EQ(stats.replayed_entries, serial.replayed_entries);
    if (threads > 1) {
      EXPECT_GT(stats.replay_batches, 0u);
      EXPECT_GE(stats.replay_threads_used, 1u);
      EXPECT_LE(stats.replay_threads_used, static_cast<std::uint64_t>(threads));
    }
  }
}

// --- direct ParallelReplayer unit tests (these also run under TSan) ---

Bytes PutRecord(const std::string& key, const std::string& value) {
  return PickleWrite(sim::KvRecord{KvApp::kPut, key, value});
}

TEST(ParallelRecoveryConcurrentTest, ReplayerMatchesSerialAcrossApplications) {
  // Two applications fed interleaved through one pool must each end up exactly as
  // if replayed serially.
  KvApp serial_a, serial_b;
  KvApp parallel_a, parallel_b;

  ParallelReplayOptions options;
  options.threads = 4;
  ParallelReplayer replayer(options);
  std::size_t a = replayer.AddApplication(parallel_a);
  std::size_t b = replayer.AddApplication(parallel_b);

  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(i % 13);
    std::string value = "v" + std::to_string(i);
    Bytes record = PutRecord(key, value);
    ASSERT_TRUE(serial_a.ApplyUpdate(record).ok());
    ASSERT_TRUE(replayer.Add(a, record).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(serial_b.ApplyUpdate(record).ok());
      ASSERT_TRUE(replayer.Add(b, record).ok());
    }
  }
  ASSERT_TRUE(replayer.Finish().ok());

  EXPECT_EQ(parallel_a.state, serial_a.state);
  EXPECT_EQ(parallel_b.state, serial_b.state);
  EXPECT_GT(replayer.stats().batches, 0u);
  EXPECT_GE(replayer.stats().threads_used, 1u);
  EXPECT_EQ(replayer.stats().entries, 500u + 250u);
}

// An application without batch support rides the same pool as one with it: the
// unbatchable one becomes a single in-order task (a serial fallback), and both end
// up correct.
class UnbatchableApp : public Application {
 public:
  Status ResetState() override {
    applied.clear();
    return OkStatus();
  }
  Result<Bytes> SerializeState() override { return Bytes{}; }
  Status DeserializeState(ByteSpan) override { return OkStatus(); }
  Status ApplyUpdate(ByteSpan record) override {
    applied.emplace_back(reinterpret_cast<const char*>(record.data()), record.size());
    return OkStatus();
  }
  std::vector<std::string> applied;
};

TEST(ParallelRecoveryConcurrentTest, UnbatchableApplicationFallsBackToInOrderApply) {
  UnbatchableApp app;
  KvApp kv;
  ParallelReplayOptions options;
  options.threads = 4;
  ParallelReplayer replayer(options);
  std::size_t plain = replayer.AddApplication(app);
  std::size_t batched = replayer.AddApplication(kv);

  std::vector<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    std::string payload = "record-" + std::to_string(i);
    expected.push_back(payload);
    ASSERT_TRUE(replayer.Add(plain, AsSpan(payload)).ok());
    Bytes record = PutRecord("k" + std::to_string(i % 5), payload);
    ASSERT_TRUE(replayer.Add(batched, record).ok());
  }
  ASSERT_TRUE(replayer.Finish().ok());
  EXPECT_EQ(app.applied, expected);  // in log order, exactly once
  EXPECT_EQ(kv.state.size(), 5u);
  EXPECT_GE(replayer.stats().serial_fallbacks, 1u);
}

// Fail-stop: a worker failure must abort the whole replay with NOTHING merged into
// the batched application's live state. The app poisons records whose value is
// "poison" at batch-apply time.
class PoisonedApp : public Application {
 public:
  class PoisonBatch final : public ReplayBatch {
   public:
    Status Apply(ByteSpan record) override {
      SDB_ASSIGN_OR_RETURN(sim::KvRecord update, PickleRead<sim::KvRecord>(record));
      if (update.value == "poison") {
        return CorruptionError("injected batch apply failure");
      }
      effects.insert_or_assign(std::move(update.key), std::move(update.value));
      return OkStatus();
    }
    std::map<std::string, std::string> effects;
  };

  Status ResetState() override {
    state.clear();
    return OkStatus();
  }
  Result<Bytes> SerializeState() override { return Bytes{}; }
  Status DeserializeState(ByteSpan) override { return OkStatus(); }
  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(sim::KvRecord update, PickleRead<sim::KvRecord>(record));
    state.insert_or_assign(std::move(update.key), std::move(update.value));
    return OkStatus();
  }
  bool ReplayKeyOf(ByteSpan record, std::string* key) override {
    Result<sim::KvRecord> update = PickleRead<sim::KvRecord>(record);
    if (!update.ok()) {
      return false;
    }
    *key = std::move(update->key);
    return true;
  }
  std::unique_ptr<ReplayBatch> StartReplayBatch() override {
    return std::make_unique<PoisonBatch>();
  }
  Status MergeReplayBatch(ReplayBatch& batch) override {
    for (auto& [key, value] : static_cast<PoisonBatch&>(batch).effects) {
      state.insert_or_assign(key, std::move(value));
    }
    return OkStatus();
  }

  std::map<std::string, std::string> state;
};

TEST(ParallelRecoveryConcurrentTest, WorkerFailureFailsStopWithoutMerging) {
  PoisonedApp app;
  ParallelReplayOptions options;
  options.threads = 4;
  ParallelReplayer replayer(options);
  std::size_t index = replayer.AddApplication(app);
  for (int i = 0; i < 200; ++i) {
    Bytes record = PutRecord("k" + std::to_string(i % 11),
                             i == 137 ? std::string("poison") : "v");
    ASSERT_TRUE(replayer.Add(index, record).ok());
  }
  Status status = replayer.Finish();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.Is(ErrorCode::kCorruption)) << status;
  EXPECT_TRUE(app.state.empty()) << "a failed replay merged a partial batch";
}

}  // namespace
}  // namespace sdb
