// Tests for the later extensions: TryAcquireUpdate, PeekCurrent, pickle tail fields,
// heap-graph fuzzing, SimFs under concurrency, and the dirsvc random crash sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/rng.h"
#include "src/core/sue_lock.h"
#include "src/core/version_store.h"
#include "src/dirsvc/directory_service.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"
#include "src/rpc/client.h"
#include "src/storage/sim_env.h"
#include "src/typedheap/heap_pickle.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

// --- SueLock::TryAcquireUpdate ---

TEST(TryAcquireTest, SucceedsWhenFreeFailsWhenHeld) {
  SueLock lock;
  ASSERT_TRUE(lock.TryAcquireUpdate());
  EXPECT_FALSE(lock.TryAcquireUpdate());  // already held
  lock.ReleaseUpdate();
  ASSERT_TRUE(lock.TryAcquireUpdate());
  lock.ReleaseUpdate();
}

TEST(TryAcquireTest, CompatibleWithSharedHolders) {
  SueLock lock;
  lock.AcquireShared();
  EXPECT_TRUE(lock.TryAcquireUpdate());  // shared || update is compatible
  lock.ReleaseUpdate();
  lock.ReleaseShared();
}

// --- VersionStore::PeekCurrent ---

class PeekCurrentTest : public ::testing::Test {
 protected:
  PeekCurrentTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }
  std::unique_ptr<SimEnv> env_;
};

TEST_F(PeekCurrentTest, ResolvesWithoutCleanup) {
  TestApp app;
  DatabaseOptions options;
  options.vfs = &env_->fs();
  options.dir = "db";
  { auto db = *Database::Open(app, options); }
  // Plant stale artifacts that Recover() would delete.
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/checkpoint7", ByteSpan{}).ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/stale.tmp", ByteSpan{}).ok());
  ASSERT_TRUE(env_->fs().SyncDir("db").ok());

  VersionStore store(env_->fs(), "db");
  VersionState state = *store.PeekCurrent();
  EXPECT_EQ(state.version, 1u);
  EXPECT_TRUE(state.removed_files.empty());
  EXPECT_TRUE(*env_->fs().Exists("db/checkpoint7"));
  EXPECT_TRUE(*env_->fs().Exists("db/stale.tmp"));

  // Recover() then cleans.
  VersionState recovered = *store.Recover();
  EXPECT_EQ(recovered.version, 1u);
  EXPECT_FALSE(*env_->fs().Exists("db/checkpoint7"));
  EXPECT_FALSE(*env_->fs().Exists("db/stale.tmp"));
}

TEST_F(PeekCurrentTest, PrefersCommittedNewversion) {
  VersionStore store(env_->fs(), "db");
  ASSERT_TRUE(env_->fs().CreateDir("db").ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/checkpoint2", AsSpan(std::string_view("c"))).ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/logfile2", ByteSpan{}).ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/version", AsSpan(std::string_view("1"))).ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/newversion", AsSpan(std::string_view("2"))).ok());
  ASSERT_TRUE(env_->fs().SyncDir("db").ok());
  VersionState state = *store.PeekCurrent();
  EXPECT_EQ(state.version, 2u);
  EXPECT_TRUE(state.finished_interrupted_switch);  // flags it; does not act on it
  EXPECT_TRUE(*env_->fs().Exists("db/newversion"));
}

// --- pickle tail fields (schema evolution) ---

struct RecordV1 {
  std::string name;
  std::uint32_t value = 0;
  SDB_PICKLE_FIELDS(RecordV1, name, value)
};

struct RecordV2 {
  std::string name;
  std::uint32_t value = 0;
  std::string annotation = "default-note";  // added in v2

  static constexpr std::string_view kPickleTypeName = "RecordV1";  // same wire type
  void PickleTo(PickleWriter& w) const { internal::WriteAll(w, name, value, annotation); }
  Status PickleFieldsFrom(PickleReader& r) {
    SDB_RETURN_IF_ERROR(internal::ReadAll(r, name, value));
    SDB_RETURN_IF_ERROR(r.ReadTailField(annotation).status());
    return OkStatus();
  }
};

TEST(PickleTailFieldTest, NewReaderAcceptsOldPickle) {
  RecordV1 old_record{"legacy", 42};
  Bytes old_bytes = PickleWrite(old_record);
  Result<RecordV2> upgraded = PickleRead<RecordV2>(AsSpan(old_bytes));
  ASSERT_TRUE(upgraded.ok()) << upgraded.status();
  EXPECT_EQ(upgraded->name, "legacy");
  EXPECT_EQ(upgraded->value, 42u);
  EXPECT_EQ(upgraded->annotation, "default-note");  // absent in v1: default retained
}

TEST(PickleTailFieldTest, NewPickleRoundTripsNewField) {
  RecordV2 record{"modern", 7, "annotated"};
  Bytes bytes = PickleWrite(record);
  Result<RecordV2> back = PickleRead<RecordV2>(AsSpan(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->annotation, "annotated");
}

// --- heap-graph decode fuzzing ---

TEST(HeapGraphFuzzTest, TruncationsAndJunkNeverCrash) {
  th::TypeRegistry registry;
  const th::TypeDesc* type = registry
                                 .Register("fz.node", {{"name", th::FieldKind::kString},
                                                       {"kids", th::FieldKind::kStringRefMap}})
                                 .value();
  th::Heap heap;
  th::Object* root = heap.Allocate(type);
  for (int i = 0; i < 5; ++i) {
    th::Object* child = heap.Allocate(type);
    ASSERT_TRUE(child->SetString(0, "c" + std::to_string(i)).ok());
    ASSERT_TRUE(root->MapSet(1, "k" + std::to_string(i), child).ok());
  }
  Bytes data = *th::PickleHeapGraph(root);

  // Every truncation fails cleanly.
  for (std::size_t cut = 0; cut < data.size(); cut += 3) {
    th::Heap scratch;
    EXPECT_FALSE(
        th::UnpickleHeapGraph(scratch, registry, ByteSpan(data.data(), cut)).ok());
  }
  // Random junk fails cleanly.
  Rng rng(606);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes junk(rng.NextBelow(150));
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.NextU64());
    }
    th::Heap scratch;
    EXPECT_FALSE(th::UnpickleHeapGraph(scratch, registry, AsSpan(junk)).ok());
  }
}

// --- heap type-usage profile ---

TEST(HeapUsageTest, UsageByTypeCountsObjectsAndBytes) {
  th::TypeRegistry registry;
  const th::TypeDesc* small =
      registry.Register("u.small", {{"n", th::FieldKind::kInt}}).value();
  const th::TypeDesc* big =
      registry.Register("u.big", {{"s", th::FieldKind::kString}}).value();
  th::Heap heap;
  for (int i = 0; i < 3; ++i) {
    heap.Allocate(small);
  }
  th::Object* fat = heap.Allocate(big);
  ASSERT_TRUE(fat->SetString(0, std::string(4096, 'x')).ok());

  auto usage = heap.UsageByType();
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].type_name, "u.big");
  EXPECT_EQ(usage[0].objects, 1u);
  EXPECT_GT(usage[0].approximate_bytes, 4000u);
  EXPECT_EQ(usage[1].type_name, "u.small");
  EXPECT_EQ(usage[1].objects, 3u);
}

// --- RPC per-method metrics ---

struct PingRequest {
  std::uint32_t n = 0;
  SDB_PICKLE_FIELDS(PingRequest, n)
};
struct PingResponse {
  std::uint32_t n = 0;
  SDB_PICKLE_FIELDS(PingResponse, n)
};

TEST(RpcMetricsTest, PerMethodCallsErrorsAndTime) {
  SimClock clock;
  rpc::RpcServer server(&clock);
  rpc::RegisterMethod<PingRequest, PingResponse>(
      server, "Svc", "Ping", [&clock](const PingRequest& request) -> Result<PingResponse> {
        clock.Charge(250);  // simulated handler work
        if (request.n == 0) {
          return InvalidArgumentError("zero");
        }
        return PingResponse{request.n};
      });
  rpc::RegisterMethod<PingRequest, PingResponse>(
      server, "Svc", "Other",
      [](const PingRequest& request) -> Result<PingResponse> { return PingResponse{request.n}; });

  rpc::LoopbackChannel channel(server, rpc::LoopbackOptions{&clock, 0});
  for (std::uint32_t n : {1u, 2u, 0u}) {
    (void)rpc::CallMethod<PingRequest, PingResponse>(channel, "Svc", "Ping", PingRequest{n});
  }
  ASSERT_TRUE(
      (rpc::CallMethod<PingRequest, PingResponse>(channel, "Svc", "Other", PingRequest{5}))
          .ok());

  auto metrics = server.metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].method, "Other");
  EXPECT_EQ(metrics[0].calls, 1u);
  EXPECT_EQ(metrics[0].errors, 0u);
  EXPECT_EQ(metrics[1].method, "Ping");
  EXPECT_EQ(metrics[1].calls, 3u);
  EXPECT_EQ(metrics[1].errors, 1u);
  EXPECT_EQ(metrics[1].handler_micros, 750);
}

// --- SimFs under concurrent use ---

TEST(SimFsConcurrencyTest, ParallelFilesStayIndependent) {
  SimEnvOptions options;
  options.microvax_cost_model = false;
  SimEnv env(options);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&env, &failures, t] {
      std::string path = "file" + std::to_string(t);
      auto file_or = env.fs().Open(path, OpenMode::kCreate);
      if (!file_or.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto file = std::move(*file_or);
      std::string pattern(37, static_cast<char>('A' + t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!file->Append(AsSpan(pattern)).ok() ||
            (i % 20 == 19 && !file->Sync().ok())) {
          failures.fetch_add(1);
          return;
        }
      }
      if (!file->Sync().ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    Bytes data = *ReadWholeFile(env.fs(), "file" + std::to_string(t));
    ASSERT_EQ(data.size(), 37u * kOpsPerThread);
    for (std::uint8_t byte : data) {
      ASSERT_EQ(byte, static_cast<std::uint8_t>('A' + t));
    }
  }
}

// --- dirsvc random crash sweep: renames never half-apply ---

class DirSvcCrashSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirSvcCrashSweepTest, RenamesAreAllOrNothingAtRandomCrashPoints) {
  Rng rng(GetParam());
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  dirsvc::DirectoryServiceOptions options;
  options.db.vfs = &env.fs();
  options.db.dir = "dirsvc";

  CrashPlan plan(1 + rng.NextBelow(80), FaultAction::kCrashTorn);
  env.disk().SetFaultInjector(plan.AsInjector());

  // Acknowledged renames: (from, to). After the crash, each must be fully at `to`;
  // each unacknowledged one fully at `from` or fully at `to`.
  std::vector<std::pair<std::string, std::string>> acked_renames;
  std::vector<std::pair<std::string, std::string>> unacked_renames;
  {
    auto svc_or = dirsvc::DirectoryService::Open(options);
    if (svc_or.ok()) {
      auto svc = std::move(*svc_or);
      for (int i = 0; i < 12; ++i) {
        std::string file = "f" + std::to_string(i);
        if (!svc->CreateFile(file, "x", static_cast<std::uint64_t>(i), 0).ok()) {
          break;
        }
        if (rng.NextBool(0.5)) {
          std::string to = "moved" + std::to_string(i);
          Status status = svc->Rename(file, to);
          (status.ok() ? acked_renames : unacked_renames).emplace_back(file, to);
          if (!status.ok()) {
            break;
          }
        }
      }
    }
  }
  env.disk().SetFaultInjector(nullptr);
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());

  auto svc = dirsvc::DirectoryService::Open(options);
  ASSERT_TRUE(svc.ok()) << svc.status();
  for (const auto& [from, to] : acked_renames) {
    EXPECT_FALSE((*svc)->Exists(from)) << from;
    EXPECT_TRUE((*svc)->Exists(to)) << to;
  }
  for (const auto& [from, to] : unacked_renames) {
    bool at_from = (*svc)->Exists(from);
    bool at_to = (*svc)->Exists(to);
    EXPECT_NE(at_from, at_to) << from << " -> " << to << " half-applied";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirSvcCrashSweepTest,
                         ::testing::Range<std::uint64_t>(500, 515));

}  // namespace
}  // namespace sdb
