// Tests for O(changes) incremental checkpoints (ISSUE 9): delta chains published
// over a base checkpoint, background / inline compaction collapsing them, and
// recovery composing base ∘ deltas + log replay — byte-identical to full-checkpoint
// recovery at every recovery_threads count, single-DB and sharded.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/integrity.h"
#include "src/core/sharded.h"
#include "src/sim/kv_app.h"
#include "src/storage/sim_env.h"

namespace sdb {
namespace {

class DeltaCheckpointTest : public ::testing::Test {
 protected:
  DeltaCheckpointTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  // Delta mode on, compaction triggers off unless a test dials them in.
  DatabaseOptions Options(std::string dir = "db") {
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = std::move(dir);
    options.clock = &env_->clock();
    options.delta_checkpoint.enabled = true;
    options.delta_checkpoint.background_compaction = false;
    options.delta_checkpoint.compact_after_deltas = 1000;
    options.delta_checkpoint.compact_delta_base_ratio = 0;
    return options;
  }

  bool Exists(std::string_view path) { return *env_->fs().Exists(path); }

  Status Put(Database& db, sim::KvApp& app, const std::string& key,
             const std::string& value) {
    return db.Update(app.PreparePut(key, value));
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(DeltaCheckpointTest, DeltaChainSurvivesRestart) {
  std::map<std::string, std::string> expected;
  {
    sim::KvApp app;
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(Put(*db, app, "a", "a-v1").ok());
    ASSERT_TRUE(Put(*db, app, "b", "b-v1").ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // delta2 on base checkpoint1
    ASSERT_TRUE(Put(*db, app, "a", "a-v2").ok());
    ASSERT_TRUE(db->Update(app.PrepareDelete("b")).ok());
    ASSERT_TRUE(Put(*db, app, "c", "c-v1").ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // delta3
    ASSERT_TRUE(Put(*db, app, "d", "d-v1").ok());  // log tail on top of the chain
    expected = app.state;
  }
  // The chain is the persistent representation: no full checkpoint beyond the base.
  EXPECT_TRUE(Exists("db/checkpoint1"));
  EXPECT_TRUE(Exists("db/delta2"));
  EXPECT_TRUE(Exists("db/delta3"));
  EXPECT_TRUE(Exists("db/manifest"));
  EXPECT_FALSE(Exists("db/checkpoint2"));
  EXPECT_FALSE(Exists("db/checkpoint3"));

  sim::KvApp recovered;
  auto db = Database::Open(recovered, Options());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(recovered.state, expected);
}

TEST_F(DeltaCheckpointTest, InlineCompactionCollapsesChainAtThreshold) {
  DatabaseOptions options = Options();
  options.delta_checkpoint.compact_after_deltas = 2;

  sim::KvApp app;
  auto db = *Database::Open(app, options);
  ASSERT_TRUE(Put(*db, app, "a", "a-v1").ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // chain: 1 + [2]
  ASSERT_TRUE(Put(*db, app, "a", "a-v2").ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // chain: 1 + [2, 3] -> compacts inline

  EXPECT_TRUE(Exists("db/checkpoint3"));
  EXPECT_FALSE(Exists("db/manifest"));
  EXPECT_FALSE(Exists("db/checkpoint1"));
  EXPECT_FALSE(Exists("db/delta2"));
  EXPECT_FALSE(Exists("db/delta3"));
  EXPECT_EQ(db->metrics().GetCounter("compaction.runs").value(), 1u);

  // The collapsed checkpoint is self-contained: recovery needs no chain.
  db.reset();
  sim::KvApp recovered;
  auto reopened = Database::Open(recovered, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(recovered.state["a"], "a-v2");
}

TEST_F(DeltaCheckpointTest, DeltaBytesRatioAlsoTriggersCompaction) {
  DatabaseOptions options = Options();
  // A tiny base with deltas quickly outgrowing it: the byte-ratio trigger fires
  // even though the chain-length trigger never would.
  options.delta_checkpoint.compact_after_deltas = 1000;
  options.delta_checkpoint.compact_delta_base_ratio = 0.01;

  sim::KvApp app;
  auto db = *Database::Open(app, options);
  ASSERT_TRUE(Put(*db, app, "a", "a-v1").ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(Put(*db, app, "b", std::string(512, 'x')).ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  EXPECT_FALSE(Exists("db/manifest"));
  EXPECT_GE(db->metrics().GetCounter("compaction.runs").value(), 1u);
}

TEST_F(DeltaCheckpointTest, BackgroundCompactionCollapsesChainByClose) {
  DatabaseOptions options = Options();
  options.delta_checkpoint.background_compaction = true;
  options.delta_checkpoint.compact_after_deltas = 2;

  {
    sim::KvApp app;
    auto db = *Database::Open(app, options);
    ASSERT_TRUE(Put(*db, app, "a", "a-v1").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(Put(*db, app, "a", "a-v2").ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // schedules the compactor thread
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(Put(*db, app, "k" + std::to_string(i), "v").ok());
      ASSERT_TRUE(db->Checkpoint().ok());
    }
    // A compaction was certainly scheduled (the chain crossed the threshold more
    // than once); wait for the single-flight compactor to land at least one run.
    obs::Counter& runs = db->metrics().GetCounter("compaction.runs");
    for (int i = 0; i < 5000 && runs.value() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(runs.value(), 1u);
    // Destruction joins any in-flight compactor thread before closing the slot.
  }
  sim::KvApp recovered;
  auto db = Database::Open(recovered, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(recovered.state["a"], "a-v2");
  EXPECT_EQ(recovered.state["k3"], "v");
  auto report = VerifyDatabaseDir(env_->fs(), "db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->healthy());
}

TEST_F(DeltaCheckpointTest, ForceFullCeilingCollapsesThroughFullSwitch) {
  DatabaseOptions options = Options();
  options.delta_checkpoint.compact_after_deltas = 1000;  // compaction never fires
  options.delta_checkpoint.force_full_at_chain_length = 3;

  sim::KvApp app;
  auto db = *Database::Open(app, options);
  ASSERT_TRUE(Put(*db, app, "a", "a-v1").ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // delta2: chain length 2
  ASSERT_TRUE(Put(*db, app, "a", "a-v2").ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // delta3: chain length 3 == ceiling
  ASSERT_TRUE(Put(*db, app, "a", "a-v3").ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // forced full: ordinary switch to checkpoint4

  EXPECT_TRUE(Exists("db/checkpoint4"));
  EXPECT_FALSE(Exists("db/delta4"));
  // The full switch superseded the chain; its files are reclaimed.
  EXPECT_FALSE(Exists("db/manifest"));
  EXPECT_FALSE(Exists("db/checkpoint1"));
  EXPECT_FALSE(Exists("db/delta2"));
  EXPECT_FALSE(Exists("db/delta3"));
}

TEST_F(DeltaCheckpointTest, KeepPreviousCheckpointDisablesDeltaMode) {
  DatabaseOptions options = Options();
  options.keep_previous_checkpoint = true;  // hard-error fallback wants full files

  sim::KvApp app;
  auto db = *Database::Open(app, options);
  ASSERT_TRUE(Put(*db, app, "a", "a-v1").ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  EXPECT_TRUE(Exists("db/checkpoint2"));
  EXPECT_FALSE(Exists("db/delta2"));
  EXPECT_FALSE(Exists("db/manifest"));
}

TEST_F(DeltaCheckpointTest, ChainRecoveryByteIdenticalToFullAtEveryThreadCount) {
  // The same update/checkpoint sequence lands in a delta-chained directory and a
  // full-checkpoint twin. Recovery from the chain must serialize byte-identically
  // to recovery from the full checkpoints, at every recovery_threads count.
  auto run_script = [&](Database& db, sim::KvApp& app) {
    for (int i = 0; i < 24; ++i) {
      std::string key = "k" + std::to_string(i % 7);
      ASSERT_TRUE(Put(db, app, key, "v" + std::to_string(i)).ok());
      if (i == 9 || i == 17) {
        ASSERT_TRUE(db.Checkpoint().ok());
      }
    }
    ASSERT_TRUE(db.Update(app.PrepareDelete("k2")).ok());
  };

  {
    sim::KvApp app;
    auto db = *Database::Open(app, Options("chain"));
    run_script(*db, app);
  }
  {
    DatabaseOptions full_options = Options("full");
    full_options.delta_checkpoint.enabled = false;
    sim::KvApp app;
    auto db = *Database::Open(app, full_options);
    run_script(*db, app);
  }
  ASSERT_TRUE(Exists("chain/manifest"));  // the chain really is the representation
  ASSERT_FALSE(Exists("full/manifest"));

  Bytes full_snapshot;
  {
    sim::KvApp app;
    DatabaseOptions options = Options("full");
    auto db = Database::OpenReadOnly(app, options);
    ASSERT_TRUE(db.ok()) << db.status();
    full_snapshot = *app.SerializeState();
  }
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("recovery_threads " + std::to_string(threads));
    sim::KvApp app;
    DatabaseOptions options = Options("chain");
    options.recovery_threads = threads;
    auto db = Database::OpenReadOnly(app, options);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_EQ(*app.SerializeState(), full_snapshot)
        << "chain recovery diverged from full-checkpoint recovery";
  }
}

// Named *Concurrent* so CI's TSan gtest filter runs it: writer threads race the
// checkpoint/compaction pipeline with background_compaction on, then a reopen
// proves no acknowledged update was lost by a delta capture or a chain collapse.
TEST_F(DeltaCheckpointTest, ConcurrentWritersWithBackgroundCompaction) {
  DatabaseOptions options = Options();
  options.delta_checkpoint.background_compaction = true;
  options.delta_checkpoint.compact_after_deltas = 2;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::vector<std::string> acknowledged;
  std::mutex mu;
  {
    sim::KvApp app;
    auto db = *Database::Open(app, options);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
          if (db->Update(app.PreparePut(key, "value-of-" + key)).ok()) {
            std::lock_guard<std::mutex> lock(mu);
            acknowledged.push_back(key);
          }
        }
      });
    }
    // Checkpoints race the writers: every one publishes a delta of whatever churn
    // it caught, and every second one crosses the compaction threshold.
    for (int c = 0; c < 6; ++c) {
      ASSERT_TRUE(db->Checkpoint().ok());
    }
    for (std::thread& w : writers) {
      w.join();
    }
    ASSERT_TRUE(db->Checkpoint().ok());  // final delta covers the stragglers
  }

  sim::KvApp recovered;
  auto db = Database::Open(recovered, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(acknowledged.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& key : acknowledged) {
    ASSERT_EQ(recovered.state.count(key), 1u) << "acknowledged update " << key << " lost";
    EXPECT_EQ(recovered.state[key], "value-of-" + key);
  }
  // And the survivor directory verifies healthy, chain or no chain.
  auto report = VerifyDatabaseDir(env_->fs(), "db");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->healthy());
}

// --- sharded: per-shard chains behind the shared log ---

class ShardedDeltaTest : public DeltaCheckpointTest {
 protected:
  ShardedOptions Options() {
    ShardedOptions options;
    options.vfs = &env_->fs();
    options.dir = "ensemble";
    options.clock = &env_->clock();
    options.delta_checkpoint.enabled = true;
    options.delta_checkpoint.compact_after_deltas = 1000;
    options.delta_checkpoint.compact_delta_base_ratio = 0;
    return options;
  }

  Result<std::unique_ptr<ShardedDatabase>> OpenEnsemble(int k, ShardedOptions options) {
    apps_.clear();
    std::vector<Application*> raw;
    for (int i = 0; i < k; ++i) {
      apps_.push_back(std::make_unique<sim::KvApp>());
      raw.push_back(apps_.back().get());
    }
    return ShardedDatabase::Open(raw, std::move(options));
  }

  std::map<std::string, std::string> MergedState() const {
    std::map<std::string, std::string> merged;
    for (const auto& app : apps_) {
      merged.insert(app->state.begin(), app->state.end());
    }
    return merged;
  }

  std::vector<std::unique_ptr<sim::KvApp>> apps_;
};

TEST_F(ShardedDeltaTest, PerShardChainsSurviveRestart) {
  std::map<std::string, std::string> expected;
  {
    auto db = *OpenEnsemble(2, Options());
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 8; ++i) {
        std::string key = "k" + std::to_string(i);
        std::string value = "r" + std::to_string(round) + "-v" + std::to_string(i);
        ASSERT_TRUE(
            db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, value)).ok());
        expected[key] = value;
      }
      ASSERT_TRUE(db->CheckpointAll().ok());  // each shard publishes a delta
    }
    EXPECT_GE(db->stats().delta_checkpoints, 2u);
  }
  auto db = OpenEnsemble(2, Options());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(MergedState(), expected);
}

TEST_F(ShardedDeltaTest, ShardCompactionCollapsesAndStaleSweepKeepsLiveChains) {
  ShardedOptions options = Options();
  options.delta_checkpoint.compact_after_deltas = 2;

  std::map<std::string, std::string> expected;
  {
    auto db = *OpenEnsemble(2, options);
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 8; ++i) {
        std::string key = "k" + std::to_string(i);
        std::string value = "r" + std::to_string(round) + "-v" + std::to_string(i);
        ASSERT_TRUE(
            db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, value)).ok());
        expected[key] = value;
      }
      ASSERT_TRUE(db->CheckpointAll().ok());
    }
    // Two compaction rounds per shard: deltas accumulate to 2, collapse, repeat.
    EXPECT_GE(db->stats().compactions, 2u);
  }
  // Reopen twice: the first recover sweeps anything an interrupted compaction might
  // have left, the second proves the sweep never reclaimed a live chain file.
  {
    auto db = OpenEnsemble(2, options);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_EQ(MergedState(), expected);
  }
  auto db = OpenEnsemble(2, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(MergedState(), expected);
}

TEST_F(ShardedDeltaTest, ShardedConcurrentUpdatesDeltaCheckpointsAndCompaction) {
  // TSan target (matches the *Concurrent* filter): writers on every shard race
  // CheckpointAll's per-shard delta captures and inline compactions.
  ShardedOptions options = Options();
  options.delta_checkpoint.compact_after_deltas = 2;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::string> acknowledged;
  std::mutex mu;
  std::map<std::string, std::string> final_state;
  {
    auto db = *OpenEnsemble(4, options);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
          std::size_t p = db->ShardForKey(key);
          if (db->UpdateKey(key, apps_[p]->PreparePut(key, "value-of-" + key)).ok()) {
            std::lock_guard<std::mutex> lock(mu);
            acknowledged.push_back(key);
          }
        }
      });
    }
    for (int c = 0; c < 4; ++c) {
      ASSERT_TRUE(db->CheckpointAll().ok());
    }
    for (std::thread& w : writers) {
      w.join();
    }
    final_state = MergedState();
  }

  auto db = OpenEnsemble(4, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(MergedState(), final_state);
  for (const std::string& key : acknowledged) {
    ASSERT_EQ(MergedState().count(key), 1u) << "acknowledged update " << key << " lost";
  }
}

}  // namespace
}  // namespace sdb
