// Paper-fidelity suite: the quantitative claims of Sections 2 and 5, encoded as
// assertions with tolerances, so CI guards the reproduction itself (the bench binaries
// print the same numbers for humans; these tests fail if the calibration drifts).
#include <gtest/gtest.h>

#include "src/baselines/smalldb_kv.h"
#include "src/baselines/wal_commit_db.h"
#include "src/common/rng.h"
#include "src/nameserver/name_service_rpc.h"
#include "src/storage/sim_env.h"

namespace sdb {
namespace {

// One shared fixture: the paper's ~1 MB name-server database under the MicroVAX cost
// model. Built once for the whole suite (populating is the expensive part).
class PaperFidelityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new SimEnv(SimEnvOptions{});
    ns::NameServerOptions options;
    options.db.vfs = &env_->fs();
    options.db.dir = "paper";
    options.db.clock = &env_->clock();
    options.cost = &env_->cost_model();
    options.replica_id = "paper";
    server_ = ns::NameServer::Open(options)->release();
    Rng rng(1987);
    int i = 0;
    while (server_->tree().approximate_bytes() < (1u << 20)) {
      std::string path = "org/dept" + std::to_string(i % 40) + "/member" + std::to_string(i);
      ASSERT_TRUE(server_->Set(path, rng.NextString(100)).ok());
      paths_->push_back(std::move(path));
      ++i;
    }
  }

  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete env_;
    env_ = nullptr;
  }

  static double MeasureMs(int reps, const std::function<void()>& op) {
    Micros start = env_->clock().NowMicros();
    for (int i = 0; i < reps; ++i) {
      op();
    }
    return static_cast<double>(env_->clock().NowMicros() - start) / reps / 1000.0;
  }

  static SimEnv* env_;
  static ns::NameServer* server_;
  static std::vector<std::string>* paths_;
};

SimEnv* PaperFidelityTest::env_ = nullptr;
ns::NameServer* PaperFidelityTest::server_ = nullptr;
std::vector<std::string>* PaperFidelityTest::paths_ = new std::vector<std::string>();

TEST_F(PaperFidelityTest, Claim_SimpleEnquiryTakesAbout5Ms) {
  Rng rng(1);
  double ms = MeasureMs(100, [&] {
    ASSERT_TRUE(server_->Lookup((*paths_)[rng.NextBelow(paths_->size())]).ok());
  });
  EXPECT_NEAR(ms, 5.0, 1.5) << "paper Section 5: 'a typical simple enquiry ... 5 msecs'";
}

TEST_F(PaperFidelityTest, Claim_UpdateTakesAbout54Ms) {
  Rng rng(2);
  int i = 0;
  double ms = MeasureMs(50, [&] {
    ASSERT_TRUE(server_
                    ->Set("org/dept" + std::to_string(i % 40) + "/fidelity" +
                              std::to_string(i++),
                          rng.NextString(300))
                    .ok());
  });
  EXPECT_NEAR(ms, 54.0, 12.0) << "paper Section 5: 'a typical update takes 54 msecs'";
}

TEST_F(PaperFidelityTest, Claim_SustainedRateAbove15Tps) {
  Rng rng(3);
  Micros start = env_->clock().NowMicros();
  constexpr int kUpdates = 100;
  for (int i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(
        server_->Set("org/dept0/tps" + std::to_string(i), rng.NextString(300)).ok());
  }
  double tps = kUpdates / (static_cast<double>(env_->clock().NowMicros() - start) / 1e6);
  EXPECT_GT(tps, 15.0) << "paper Section 5: 'more than 15 transactions per second'";
}

TEST_F(PaperFidelityTest, Claim_RemoteEnquiry13MsUpdate62Ms) {
  rpc::RpcServer rpc_server;
  RegisterNameService(rpc_server, *server_);
  rpc::LoopbackChannel channel(rpc_server, rpc::LoopbackOptions{&env_->clock(), 8000});
  ns::NameServiceClient client(channel);
  Rng rng(4);

  double enquiry_ms = MeasureMs(50, [&] {
    ASSERT_TRUE(client.Lookup((*paths_)[rng.NextBelow(paths_->size())]).ok());
  });
  EXPECT_NEAR(enquiry_ms, 13.0, 2.5)
      << "paper Section 5: 'a name server enquiry in 13 msecs'";

  int i = 0;
  double update_ms = MeasureMs(30, [&] {
    ASSERT_TRUE(client
                    .Set("org/dept1/remote" + std::to_string(i++),
                         rng.NextString(300))
                    .ok());
  });
  EXPECT_NEAR(update_ms, 62.0, 14.0) << "paper Section 5: 'an update in 62 msecs'";
}

TEST_F(PaperFidelityTest, Claim_CheckpointTakesAboutAMinuteAt1Mb) {
  ASSERT_TRUE(server_->Checkpoint().ok());
  CheckpointBreakdown breakdown = server_->database().stats().last_checkpoint;
  double total_seconds = static_cast<double>(breakdown.total_micros) / 1e6;
  // "about one minute" — same order of magnitude; serialization dominates (the paper:
  // 55 s of 60 s is pickling).
  EXPECT_GT(total_seconds, 20.0);
  EXPECT_LT(total_seconds, 120.0);
  EXPECT_GT(static_cast<double>(breakdown.serialize_micros),
            0.8 * static_cast<double>(breakdown.total_micros))
      << "pickling must dominate checkpointing, as in the paper";
}

TEST_F(PaperFidelityTest, Claim_EnquiriesNeverTouchTheDisk) {
  SimDiskStats before = env_->disk().stats();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(server_->Lookup((*paths_)[rng.NextBelow(paths_->size())]).ok());
  }
  SimDiskStats after = env_->disk().stats();
  EXPECT_EQ(after.page_reads, before.page_reads)
      << "paper Section 3: 'The disk structures are not involved.'";
  EXPECT_EQ(after.page_writes, before.page_writes);
}

// The Section 2 "factor of two": naive atomic commit does exactly twice the disk
// writes per update of the paper's design.
TEST(PaperFidelityComparisonTest, Claim_NaiveAtomicCommitIsTwiceTheDiskWrites) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  auto measure_writes = [&env](baselines::KvDatabase& db) {
    (void)db.Put("warmup", "x");
    SimDiskStats before = env.disk().stats();
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(db.Put("key" + std::to_string(i), "value").ok());
    }
    return env.disk().stats().page_writes - before.page_writes;
  };

  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "ours";
  auto ours = *baselines::SmallDbKv::Open(options);
  auto naive = *baselines::WalCommitDb::Open(env.fs(), "naive");
  std::uint64_t our_writes = measure_writes(*ours);
  std::uint64_t naive_writes = measure_writes(*naive);
  EXPECT_EQ(our_writes, 20u);
  EXPECT_EQ(naive_writes, 40u)
      << "paper Section 2: 'two disk writes ... about a factor of two worse'";
}

}  // namespace
}  // namespace sdb
