// Unit tests for the pickle package: scalar/container traits, struct macro, pointer
// swizzling, envelope integrity.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb {
namespace {

template <typename T>
T RoundTrip(const T& value) {
  Bytes data = PickleWrite(value);
  Result<T> back = PickleRead<T>(AsSpan(data));
  EXPECT_TRUE(back.ok()) << back.status();
  return back.ok() ? *back : T{};
}

TEST(PickleTest, Scalars) {
  EXPECT_EQ(RoundTrip<std::int32_t>(-12345), -12345);
  EXPECT_EQ(RoundTrip<std::uint64_t>(0xDEADBEEFCAFEull), 0xDEADBEEFCAFEull);
  EXPECT_EQ(RoundTrip<bool>(true), true);
  EXPECT_EQ(RoundTrip<bool>(false), false);
  EXPECT_EQ(RoundTrip<double>(2.718281828), 2.718281828);
  EXPECT_EQ(RoundTrip<std::string>("the quick brown fox"), "the quick brown fox");
  EXPECT_EQ(RoundTrip<std::string>(""), "");
}

enum class Color : std::uint8_t { kRed = 1, kBlue = 7 };

TEST(PickleTest, Enums) { EXPECT_EQ(RoundTrip(Color::kBlue), Color::kBlue); }

TEST(PickleTest, StringWithEmbeddedNulAndNewline) {
  std::string tricky("a\0b\nc", 5);
  EXPECT_EQ(RoundTrip(tricky), tricky);
}

TEST(PickleTest, Containers) {
  std::vector<std::int64_t> v{1, -2, 3};
  EXPECT_EQ(RoundTrip(v), v);

  std::map<std::string, std::uint32_t> m{{"a", 1}, {"b", 2}};
  EXPECT_EQ(RoundTrip(m), m);

  std::unordered_map<std::string, std::string> um{{"k", "v"}, {"x", "y"}};
  EXPECT_EQ(RoundTrip(um), um);

  std::set<std::string> s{"p", "q"};
  EXPECT_EQ(RoundTrip(s), s);

  std::vector<std::vector<std::string>> nested{{"a"}, {}, {"b", "c"}};
  EXPECT_EQ(RoundTrip(nested), nested);
}

TEST(PickleTest, EmptyContainers) {
  EXPECT_EQ(RoundTrip(std::vector<int>{}), std::vector<int>{});
  EXPECT_EQ(RoundTrip(std::map<std::string, int>{}), (std::map<std::string, int>{}));
}

TEST(PickleTest, Optional) {
  EXPECT_EQ(RoundTrip(std::optional<int>{42}), std::optional<int>{42});
  EXPECT_EQ(RoundTrip(std::optional<int>{}), std::optional<int>{});
}

TEST(PickleTest, PairAndBytes) {
  std::pair<std::string, std::int32_t> p{"key", -9};
  EXPECT_EQ(RoundTrip(p), p);
  Bytes raw{0, 1, 2, 255};
  EXPECT_EQ(RoundTrip(raw), raw);
}

struct Inner {
  std::int32_t a = 0;
  std::string b;
  SDB_PICKLE_FIELDS(Inner, a, b)
  bool operator==(const Inner&) const = default;
};

struct Outer {
  std::vector<Inner> inners;
  std::optional<std::string> note;
  std::uint64_t count = 0;
  SDB_PICKLE_FIELDS(Outer, inners, note, count)
  bool operator==(const Outer&) const = default;
};

TEST(PickleTest, NestedStructsViaMacro) {
  Outer outer{{{1, "x"}, {2, "y"}}, "hello", 99};
  EXPECT_EQ(RoundTrip(outer), outer);
}

TEST(PickleTest, TypeNameMismatchRejected) {
  Inner inner{1, "z"};
  Bytes data = PickleWrite(inner);
  Result<Outer> wrong = PickleRead<Outer>(AsSpan(data));
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().Is(ErrorCode::kCorruption));
}

TEST(PickleTest, EveryTruncationIsDetected) {
  Outer outer{{{1, "abc"}, {2, "defg"}}, std::nullopt, 123456789};
  Bytes data = PickleWrite(outer);
  for (std::size_t cut = 0; cut < data.size(); ++cut) {
    Bytes truncated(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(cut));
    Result<Outer> back = PickleRead<Outer>(AsSpan(truncated));
    EXPECT_FALSE(back.ok()) << "truncation at " << cut << " went undetected";
  }
}

TEST(PickleTest, EveryByteFlipIsDetected) {
  Inner inner{77, "flip me"};
  Bytes data = PickleWrite(inner);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes corrupted = data;
    corrupted[i] ^= 0x40;
    Result<Inner> back = PickleRead<Inner>(AsSpan(corrupted));
    EXPECT_FALSE(back.ok()) << "byte flip at " << i << " went undetected";
  }
}

TEST(PickleTest, SharedPtrNull) {
  std::shared_ptr<Inner> null;
  Bytes data = PickleWrite(null);
  Result<std::shared_ptr<Inner>> back = PickleRead<std::shared_ptr<Inner>>(AsSpan(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nullptr);
}

struct Node {
  std::string label;
  std::shared_ptr<Node> next;
  SDB_PICKLE_FIELDS(Node, label, next)
};

TEST(PickleTest, SharedPtrChain) {
  auto c = std::make_shared<Node>(Node{"c", nullptr});
  auto b = std::make_shared<Node>(Node{"b", c});
  auto a = std::make_shared<Node>(Node{"a", b});
  Bytes data = PickleWrite(a);
  auto back = PickleRead<std::shared_ptr<Node>>(AsSpan(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->label, "a");
  EXPECT_EQ((*back)->next->next->label, "c");
  EXPECT_EQ((*back)->next->next->next, nullptr);
}

struct Diamond {
  std::shared_ptr<Node> left;
  std::shared_ptr<Node> right;
  SDB_PICKLE_FIELDS(Diamond, left, right)
};

TEST(PickleTest, SharedStructureIsPreserved) {
  auto shared = std::make_shared<Node>(Node{"shared", nullptr});
  Diamond d{shared, shared};
  Bytes data = PickleWrite(d);
  auto back = PickleRead<Diamond>(AsSpan(data));
  ASSERT_TRUE(back.ok());
  // Both arms must point at the *same* reconstructed object, not two copies.
  EXPECT_EQ(back->left.get(), back->right.get());
  EXPECT_EQ(back->left->label, "shared");
}

TEST(PickleTest, CyclicStructureRoundTrips) {
  auto a = std::make_shared<Node>(Node{"a", nullptr});
  auto b = std::make_shared<Node>(Node{"b", a});
  a->next = b;  // a -> b -> a
  Bytes data = PickleWrite(a);
  auto back = PickleRead<std::shared_ptr<Node>>(AsSpan(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->label, "a");
  EXPECT_EQ((*back)->next->label, "b");
  EXPECT_EQ((*back)->next->next.get(), back->get());  // the cycle is closed
  // Break both cycles so the shared_ptr rings can actually be freed (LSan).
  a->next = nullptr;
  (*back)->next->next = nullptr;
}

TEST(PickleTest, UniquePtr) {
  auto p = std::make_unique<Inner>(Inner{5, "u"});
  Bytes data = PickleWrite(p);
  auto back = PickleRead<std::unique_ptr<Inner>>(AsSpan(data));
  ASSERT_TRUE(back.ok());
  ASSERT_NE(*back, nullptr);
  EXPECT_EQ((*back)->a, 5);
}

TEST(PickleTest, CostModelCharged) {
  SimClock clock;
  CostModel model = CostModel::MicroVax(&clock);
  Inner inner{1, "cost"};
  Bytes data = PickleWrite(inner, &model);
  Micros write_cost = clock.NowMicros();
  EXPECT_GT(write_cost, 0);
  ASSERT_TRUE(PickleRead<Inner>(AsSpan(data), &model).ok());
  EXPECT_GT(clock.NowMicros(), write_cost);
  // Write is calibrated more expensive than read (52 vs 14 us/byte).
  EXPECT_GT(write_cost, clock.NowMicros() - write_cost);
}

TEST(PickleTest, RawPayloadHasNoEnvelope) {
  PickleWriter writer;
  writer.Write(std::string("raw"));
  Bytes raw = std::move(writer).TakeRaw();
  PickleReader reader = PickleReader::Raw(AsSpan(raw));
  std::string back;
  ASSERT_TRUE(reader.Read(back).ok());
  EXPECT_EQ(back, "raw");
}

TEST(PickleTest, VectorCountSanityCheck) {
  // A forged huge count must be rejected before allocation.
  PickleWriter writer;
  writer.bytes().PutVarint(1ull << 40);
  Bytes raw = std::move(writer).TakeRaw();
  PickleReader reader = PickleReader::Raw(AsSpan(raw));
  std::vector<std::string> out;
  EXPECT_TRUE(reader.Read(out).Is(ErrorCode::kCorruption));
}

TEST(PickleTest, DuplicateMapKeysRejected) {
  PickleWriter writer;
  writer.bytes().PutVarint(2);
  writer.Write(std::string("same"));
  writer.Write(std::uint32_t{1});
  writer.Write(std::string("same"));
  writer.Write(std::uint32_t{2});
  Bytes raw = std::move(writer).TakeRaw();
  PickleReader reader = PickleReader::Raw(AsSpan(raw));
  std::map<std::string, std::uint32_t> out;
  EXPECT_TRUE(reader.Read(out).Is(ErrorCode::kCorruption));
}

TEST(PickleTest, EmptyEnvelopeRejected) {
  EXPECT_FALSE(PickleRead<Inner>(ByteSpan{}).ok());
}

}  // namespace
}  // namespace sdb
