// Tests for the replication layer: propagation, anti-entropy convergence, partitions,
// and hard-error restore from a peer (the paper's Section 4 scenario).
#include <gtest/gtest.h>

#include "src/nameserver/replication.h"
#include "src/storage/sim_env.h"

namespace sdb::ns {
namespace {

// A little cluster of name-server replicas wired together over loopback channels.
class Cluster {
 public:
  explicit Cluster(int n) {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(env_options);
    for (int i = 0; i < n; ++i) {
      NameServerOptions options;
      options.db.vfs = &env_->fs();
      options.db.dir = "replica" + std::to_string(i);
      options.db.clock = &env_->clock();
      options.replica_id = "r" + std::to_string(i);
      servers_.push_back(*NameServer::Open(options));
      rpc_servers_.push_back(std::make_unique<rpc::RpcServer>());
      RegisterNameService(*rpc_servers_.back(), *servers_.back());
    }
    replicators_.reserve(servers_.size());
    for (int i = 0; i < n; ++i) {
      replicators_.push_back(std::make_unique<Replicator>(*servers_[i]));
      for (int j = 0; j < n; ++j) {
        if (i == j) {
          continue;
        }
        channels_.push_back(std::make_unique<rpc::LoopbackChannel>(
            *rpc_servers_[j], rpc::LoopbackOptions{&env_->clock(), 8000}));
        channel_index_[{i, j}] = channels_.back().get();
        replicators_[i]->AddPeer("r" + std::to_string(j), *channels_.back());
      }
    }
  }

  NameServer& server(int i) { return *servers_[i]; }
  Replicator& replicator(int i) { return *replicators_[i]; }
  rpc::LoopbackChannel& channel(int from, int to) { return *channel_index_.at({from, to}); }

  void PropagateAllRounds(int rounds = 3) {
    for (int round = 0; round < rounds; ++round) {
      for (auto& replicator : replicators_) {
        ASSERT_TRUE(replicator->Propagate().ok());
      }
    }
  }

  bool Converged(std::string_view path, std::string_view expected) {
    for (auto& server : servers_) {
      Result<std::string> value = server->Lookup(path);
      if (!value.ok() || *value != expected) {
        return false;
      }
    }
    return true;
  }

 private:
  std::unique_ptr<SimEnv> env_;
  std::vector<std::unique_ptr<NameServer>> servers_;
  std::vector<std::unique_ptr<rpc::RpcServer>> rpc_servers_;
  std::vector<std::unique_ptr<rpc::LoopbackChannel>> channels_;
  std::map<std::pair<int, int>, rpc::LoopbackChannel*> channel_index_;
  std::vector<std::unique_ptr<Replicator>> replicators_;
};

TEST(ReplicationTest, PropagateSpreadsUpdates) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.server(0).Set("host/a", "1").ok());
  ASSERT_TRUE(cluster.server(0).Set("host/b", "2").ok());
  ASSERT_TRUE(cluster.replicator(0).Propagate().ok());
  EXPECT_TRUE(cluster.Converged("host/a", "1"));
  EXPECT_TRUE(cluster.Converged("host/b", "2"));
  EXPECT_EQ(cluster.replicator(0).stats().updates_pushed, 4u);  // 2 updates x 2 peers
}

TEST(ReplicationTest, PropagateIsIncremental) {
  Cluster cluster(2);
  ASSERT_TRUE(cluster.server(0).Set("k", "v1").ok());
  ASSERT_TRUE(cluster.replicator(0).Propagate().ok());
  ASSERT_TRUE(cluster.server(0).Set("k", "v2").ok());
  ASSERT_TRUE(cluster.replicator(0).Propagate().ok());
  // Only the new update travels the second time.
  EXPECT_EQ(cluster.replicator(0).stats().updates_pushed, 2u);
  EXPECT_TRUE(cluster.Converged("k", "v2"));
}

TEST(ReplicationTest, AntiEntropyPullsMissedUpdates) {
  Cluster cluster(2);
  ASSERT_TRUE(cluster.server(1).Set("made/elsewhere", "x").ok());
  // Replica 0 pulls.
  ASSERT_TRUE(cluster.replicator(0).AntiEntropy().ok());
  EXPECT_EQ(*cluster.server(0).Lookup("made/elsewhere"), "x");
  EXPECT_EQ(cluster.replicator(0).stats().updates_pulled, 1u);
}

TEST(ReplicationTest, ConcurrentWritesConvergeByLastWriterWins) {
  Cluster cluster(2);
  // Both replicas write the same name while partitioned.
  cluster.channel(0, 1).SetConnected(false);
  cluster.channel(1, 0).SetConnected(false);
  ASSERT_TRUE(cluster.server(0).Set("conflict", "from-r0").ok());
  ASSERT_TRUE(cluster.server(1).Set("conflict", "from-r1").ok());

  // Heal and exchange in both directions, twice.
  cluster.channel(0, 1).SetConnected(true);
  cluster.channel(1, 0).SetConnected(true);
  cluster.PropagateAllRounds();

  // Both replicas agree; equal lamport stamps tie-break by origin id (r1 > r0).
  EXPECT_EQ(*cluster.server(0).Lookup("conflict"), "from-r1");
  EXPECT_TRUE(cluster.Converged("conflict", "from-r1"));
}

TEST(ReplicationTest, PartitionedPeerSkippedThenCatchesUp) {
  Cluster cluster(3);
  cluster.channel(0, 2).SetConnected(false);  // r0 cannot reach r2
  ASSERT_TRUE(cluster.server(0).Set("k", "v").ok());
  ASSERT_TRUE(cluster.replicator(0).Propagate().ok());
  EXPECT_EQ(*cluster.server(1).Lookup("k"), "v");
  EXPECT_TRUE(cluster.server(2).Lookup("k").status().Is(ErrorCode::kNotFound));
  EXPECT_GE(cluster.replicator(0).stats().peers_unreachable, 1u);

  // r2 can still pull from r1 (gossip heals the partition).
  ASSERT_TRUE(cluster.replicator(2).AntiEntropy().ok());
  EXPECT_EQ(*cluster.server(2).Lookup("k"), "v");
}

TEST(ReplicationTest, RemovesReplicateToo) {
  Cluster cluster(2);
  ASSERT_TRUE(cluster.server(0).Set("doomed", "x").ok());
  cluster.PropagateAllRounds();
  ASSERT_TRUE(cluster.server(0).Remove("doomed").ok());
  cluster.PropagateAllRounds();
  EXPECT_TRUE(cluster.server(1).Lookup("doomed").status().Is(ErrorCode::kNotFound));
}

TEST(ReplicationTest, RestoreFromPeerAfterHardError) {
  // The paper's hard-error story: a replica loses its disk; restore from a peer,
  // losing only updates that never propagated.
  Cluster cluster(2);
  ASSERT_TRUE(cluster.server(0).Set("shared/one", "1").ok());
  ASSERT_TRUE(cluster.server(0).Set("shared/two", "2").ok());
  cluster.PropagateAllRounds();

  // r0 takes one more update that never propagates, then suffers the hard error.
  cluster.channel(0, 1).SetConnected(false);
  ASSERT_TRUE(cluster.server(0).Set("unpropagated", "lost").ok());

  // r0's database is destroyed; restore it from r1.
  cluster.channel(0, 1).SetConnected(true);
  ASSERT_TRUE(cluster.replicator(0).RestoreFromPeer("r1").ok());

  EXPECT_EQ(*cluster.server(0).Lookup("shared/one"), "1");
  EXPECT_EQ(*cluster.server(0).Lookup("shared/two"), "2");
  // "This causes us to lose only those updates that had been applied to the damaged
  // replica but not propagated" — the unpropagated update is gone.
  EXPECT_TRUE(cluster.server(0).Lookup("unpropagated").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(cluster.replicator(0).stats().full_restores, 1u);

  // And r0 keeps functioning as a replica afterwards.
  ASSERT_TRUE(cluster.server(0).Set("after/restore", "ok").ok());
  cluster.PropagateAllRounds();
  EXPECT_TRUE(cluster.Converged("after/restore", "ok"));
}

TEST(ReplicationTest, RestoreFromUnknownPeerFails) {
  Cluster cluster(2);
  EXPECT_TRUE(cluster.replicator(0).RestoreFromPeer("nobody").Is(ErrorCode::kNotFound));
}

TEST(ReplicationTest, SchedulerRunsWorkOnItsIntervals) {
  Cluster cluster(2);
  Replicator& rep = cluster.replicator(0);
  ReplicationScheduler::Options options;
  options.propagate_interval = 10 * kMicrosPerSecond;
  options.anti_entropy_interval = 100 * kMicrosPerSecond;
  ReplicationScheduler scheduler(rep, options);

  ASSERT_TRUE(cluster.server(0).Set("sched/a", "1").ok());
  // t=10s: first propagation due.
  ASSERT_TRUE(scheduler.Tick(10 * kMicrosPerSecond).ok());
  EXPECT_EQ(scheduler.propagate_runs(), 1u);
  EXPECT_EQ(*cluster.server(1).Lookup("sched/a"), "1");

  // t=15s: nothing due.
  ASSERT_TRUE(scheduler.Tick(15 * kMicrosPerSecond).ok());
  EXPECT_EQ(scheduler.propagate_runs(), 1u);

  // The peer originates an update we missed; the hourly-style sweep pulls it.
  ASSERT_TRUE(cluster.server(1).Set("sched/b", "2").ok());
  ASSERT_TRUE(scheduler.Tick(120 * kMicrosPerSecond).ok());
  EXPECT_EQ(scheduler.anti_entropy_runs(), 1u);
  EXPECT_EQ(*cluster.server(0).Lookup("sched/b"), "2");
}

TEST(ReplicationTest, ThreeReplicaGossipConvergence) {
  Cluster cluster(3);
  // Each replica originates distinct updates.
  ASSERT_TRUE(cluster.server(0).Set("from/r0", "a").ok());
  ASSERT_TRUE(cluster.server(1).Set("from/r1", "b").ok());
  ASSERT_TRUE(cluster.server(2).Set("from/r2", "c").ok());
  cluster.PropagateAllRounds();
  EXPECT_TRUE(cluster.Converged("from/r0", "a"));
  EXPECT_TRUE(cluster.Converged("from/r1", "b"));
  EXPECT_TRUE(cluster.Converged("from/r2", "c"));
  // Version vectors agree everywhere.
  VersionVector vv0 = cluster.server(0).version_vector();
  EXPECT_EQ(vv0, cluster.server(1).version_vector());
  EXPECT_EQ(vv0, cluster.server(2).version_vector());
}

}  // namespace
}  // namespace sdb::ns
