// Tests for the extension features: audit-log retention, offline integrity
// verification, name-server export and compare-and-set, heap validation.
#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/core/integrity.h"
#include "src/core/log_format.h"
#include "src/core/version_store.h"
#include "src/nameserver/name_server.h"
#include "src/nameserver/updates.h"
#include "src/sim/kv_app.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  DatabaseOptions Options() {
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = "db";
    options.clock = &env_->clock();
    return options;
  }

  std::unique_ptr<SimEnv> env_;
};

// --- audit-log retention ---

TEST_F(ExtensionsTest, AuditLogsRetainedAcrossCheckpoints) {
  TestApp app;
  DatabaseOptions options = Options();
  options.retain_logs_for_audit = true;
  auto db = *Database::Open(app, options);

  ASSERT_TRUE(db->Update(app.PreparePut("gen1", "a")).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // logfile1 -> audit1
  ASSERT_TRUE(db->Update(app.PreparePut("gen2", "b")).ok());
  ASSERT_TRUE(db->Update(app.PreparePut("gen2b", "c")).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // logfile2 -> audit2

  auto audits = *db->version_store().ListAuditLogs();
  EXPECT_EQ(audits, (std::vector<std::uint64_t>{1, 2}));

  // The audit trail is replayable history.
  auto trail1 = *ReadAuditTrail(env_->fs(), db->version_store().AuditPath(1));
  auto trail2 = *ReadAuditTrail(env_->fs(), db->version_store().AuditPath(2));
  EXPECT_EQ(trail1.size(), 1u);
  EXPECT_EQ(trail2.size(), 2u);
}

TEST_F(ExtensionsTest, AuditLogsSurviveCrashDuringSwitch) {
  TestApp app;
  DatabaseOptions options = Options();
  options.retain_logs_for_audit = true;
  {
    auto db = *Database::Open(app, options);
    ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  TestApp app2;
  auto db = *Database::Open(app2, options);
  auto audits = *db->version_store().ListAuditLogs();
  EXPECT_EQ(audits, (std::vector<std::uint64_t>{1}));
}

TEST_F(ExtensionsTest, AuditFilesNotTreatedAsStale) {
  TestApp app;
  DatabaseOptions options = Options();
  options.retain_logs_for_audit = true;
  {
    auto db = *Database::Open(app, options);
    ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Reopen (recovery runs cleanup); audit1 must survive.
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  TestApp app2;
  auto db2 = *Database::Open(app2, options);
  (void)db2;
  EXPECT_TRUE(*env_->fs().Exists("db/audit1"));
}

// --- offline integrity ---

TEST_F(ExtensionsTest, IntegrityHealthyDatabase) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("b", "2")).ok());
  }
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.version, 1u);
  EXPECT_TRUE(report.checkpoint_ok);
  EXPECT_EQ(report.checkpoint_type, "TestApp.state");
  EXPECT_EQ(report.log_entries, 2u);
  EXPECT_FALSE(report.pending_switch);
  EXPECT_TRUE(report.problems.empty());
}

TEST_F(ExtensionsTest, IntegrityDetectsDamagedCheckpoint) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
  }
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/checkpoint1", 0).ok());
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_FALSE(report.healthy());
  EXPECT_FALSE(report.checkpoint_ok);
  EXPECT_FALSE(report.problems.empty());
}

TEST_F(ExtensionsTest, IntegrityDetectsDamagedLogEntry) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
    }
  }
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/logfile1", 2).ok());
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_FALSE(report.healthy());
  EXPECT_EQ(report.log_damaged_entries, 1u);
  EXPECT_EQ(report.log_entries, 4u);
}

TEST_F(ExtensionsTest, IntegrityReportsPartialTailAsHarmless) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("ok", "1")).ok());
  }
  // Fabricate a partial tail: the first bytes of a valid entry, durably on disk but
  // cut short — the state a file system that persists size before data can leave.
  {
    ByteWriter entry;
    EncodeLogEntry(AsSpan(std::string_view("half-written update record")), entry);
    ByteSpan half = AsSpan(entry.buffer()).subspan(0, entry.size() / 2);
    auto log = *env_->fs().Open("db/logfile1", OpenMode::kReadWrite);
    ASSERT_TRUE(log->Append(half).ok());
    ASSERT_TRUE(log->Sync().ok());
  }
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_TRUE(report.healthy());  // a torn tail is the normal transient case
  EXPECT_TRUE(report.log_has_partial_tail);
  EXPECT_EQ(report.log_entries, 1u);
}

TEST_F(ExtensionsTest, IntegrityDetectsPendingSwitch) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  }
  // Fabricate a committed-but-uncleaned switch.
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/checkpoint2",
                             AsSpan(*ReadWholeFile(env_->fs(), "db/checkpoint1")))
                  .ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/logfile2", ByteSpan{}).ok());
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/newversion", AsSpan(std::string_view("2"))).ok());
  ASSERT_TRUE(env_->fs().SyncDir("db").ok());

  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_EQ(report.version, 2u);
  EXPECT_TRUE(report.pending_switch);
  // Inspection is read-only: the switch is still pending afterwards.
  EXPECT_TRUE(*env_->fs().Exists("db/newversion"));
  EXPECT_TRUE(*env_->fs().Exists("db/checkpoint1"));
}

TEST_F(ExtensionsTest, IntegrityEmptyDirFails) {
  ASSERT_TRUE(env_->fs().CreateDir("db").ok());
  EXPECT_TRUE(VerifyDatabaseDir(env_->fs(), "db").status().Is(ErrorCode::kNotFound));
}

// --- offline integrity: delta chains ---

class IntegrityChainTest : public ExtensionsTest {
 protected:
  // Two delta checkpoints on top of the fresh base, compaction disabled, so the
  // directory holds checkpoint1 + delta2 + delta3 + a manifest.
  void BuildChain() {
    DatabaseOptions options = Options();
    options.delta_checkpoint.background_compaction = false;
    options.delta_checkpoint.compact_after_deltas = 100;
    options.delta_checkpoint.compact_delta_base_ratio = 0;
    auto db = *Database::Open(app_, options);
    ASSERT_TRUE(db->Update(app_.PreparePut("a", "1")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Update(app_.PreparePut("b", "2")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }

  sim::KvApp app_;
};

TEST_F(IntegrityChainTest, VerifiesHealthyDeltaChain) {
  BuildChain();
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_TRUE(report.healthy());
  EXPECT_TRUE(report.chain_ok);
  EXPECT_EQ(report.version, 3u);
  EXPECT_EQ(report.chain_base, 1u);
  EXPECT_EQ(report.chain_deltas, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_GT(report.chain_delta_bytes, 0u);
  EXPECT_EQ(report.checkpoint_type, "sim.KvApp.state");
  EXPECT_TRUE(report.problems.empty());
}

TEST_F(IntegrityChainTest, DetectsMissingChainDelta) {
  BuildChain();
  ASSERT_TRUE(env_->fs().Delete("db/delta2").ok());
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_FALSE(report.healthy());
  EXPECT_FALSE(report.chain_ok);
  EXPECT_FALSE(report.problems.empty());
}

TEST_F(IntegrityChainTest, DetectsDamagedChainDelta) {
  BuildChain();
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/delta3", 0).ok());
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_FALSE(report.healthy());
  EXPECT_FALSE(report.chain_ok);
}

TEST_F(IntegrityChainTest, DetectsManifestSkippingCurrentVersion) {
  BuildChain();
  // Fabricate a manifest whose chain jumps past the committed version: base 1
  // with a single delta at 5 cannot compose version 3.
  VersionStore names(env_->fs(), "db");
  ASSERT_TRUE(names.PublishManifest(DeltaChain{1, {2, 5}}).ok());
  auto report = *VerifyDatabaseDir(env_->fs(), "db");
  EXPECT_FALSE(report.healthy());
  EXPECT_FALSE(report.chain_ok);
}

// --- name-server export and compare-and-set ---

class NsExtensionsTest : public ExtensionsTest {
 protected:
  std::unique_ptr<ns::NameServer> OpenNs() {
    ns::NameServerOptions options;
    options.db.vfs = &env_->fs();
    options.db.dir = "ns";
    options.db.clock = &env_->clock();
    options.replica_id = "ext";
    return *ns::NameServer::Open(options);
  }
};

TEST_F(NsExtensionsTest, ExportEnumeratesSubtreeSorted) {
  auto server = OpenNs();
  ASSERT_TRUE(server->Set("b/y", "2").ok());
  ASSERT_TRUE(server->Set("a", "1").ok());
  ASSERT_TRUE(server->Set("b/x/deep", "3").ok());
  ASSERT_TRUE(server->Set("b/x", "4").ok());

  auto all = *server->Export("");
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(all[1], (std::pair<std::string, std::string>{"b/x", "4"}));
  EXPECT_EQ(all[2], (std::pair<std::string, std::string>{"b/x/deep", "3"}));
  EXPECT_EQ(all[3], (std::pair<std::string, std::string>{"b/y", "2"}));

  auto subtree = *server->Export("b/x");
  ASSERT_EQ(subtree.size(), 2u);
  EXPECT_EQ(subtree[0].first, "b/x");
  EXPECT_EQ(subtree[1].first, "b/x/deep");

  EXPECT_TRUE(server->Export("nope").status().Is(ErrorCode::kNotFound));
}

TEST_F(NsExtensionsTest, ExportSkipsValuelessIntermediates) {
  auto server = OpenNs();
  ASSERT_TRUE(server->Set("a/b/c", "leaf").ok());
  auto all = *server->Export("");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].first, "a/b/c");
}

TEST_F(NsExtensionsTest, CompareAndSetHonoursPrecondition) {
  auto server = OpenNs();
  ASSERT_TRUE(server->Set("cfg", "v1").ok());
  std::uint64_t log_before = server->database().log_bytes();

  EXPECT_TRUE(server->CompareAndSet("cfg", "WRONG", "v2").Is(ErrorCode::kFailedPrecondition));
  EXPECT_EQ(server->database().log_bytes(), log_before);  // nothing logged
  EXPECT_EQ(*server->Lookup("cfg"), "v1");

  ASSERT_TRUE(server->CompareAndSet("cfg", "v1", "v2").ok());
  EXPECT_EQ(*server->Lookup("cfg"), "v2");

  EXPECT_TRUE(server->CompareAndSet("missing", "x", "y").Is(ErrorCode::kNotFound));
}

TEST_F(NsExtensionsTest, CompareAndSetSurvivesRestart) {
  {
    auto server = OpenNs();
    ASSERT_TRUE(server->Set("counter", "1").ok());
    ASSERT_TRUE(server->CompareAndSet("counter", "1", "2").ok());
  }
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  auto server = OpenNs();
  EXPECT_EQ(*server->Lookup("counter"), "2");
}

// --- heap validation ---

TEST(HeapValidateTest, CleanHeapValidates) {
  th::TypeRegistry registry;
  const th::TypeDesc* type =
      registry.Register("v.node", {{"next", th::FieldKind::kRef}}).value();
  th::Heap heap;
  th::Object* a = heap.Allocate(type);
  th::Object* b = heap.Allocate(type);
  ASSERT_TRUE(a->SetRef(0, b).ok());
  heap.AddRoot(a);
  EXPECT_TRUE(heap.Validate().ok());
}

TEST(HeapValidateTest, CrossHeapReferenceDetected) {
  th::TypeRegistry registry;
  const th::TypeDesc* type =
      registry.Register("v.node", {{"next", th::FieldKind::kRef}}).value();
  th::Heap heap_a;
  th::Heap heap_b;
  th::Object* a = heap_a.Allocate(type);
  th::Object* foreign = heap_b.Allocate(type);
  ASSERT_TRUE(a->SetRef(0, foreign).ok());
  EXPECT_TRUE(heap_a.Validate().Is(ErrorCode::kInternal));
}

TEST(HeapValidateTest, DanglingRootDetected) {
  th::TypeRegistry registry;
  const th::TypeDesc* type =
      registry.Register("v.node", {{"next", th::FieldKind::kRef}}).value();
  th::Heap heap;
  th::Object* a = heap.Allocate(type);
  heap.AddRoot(a);
  heap.RemoveRoot(a);
  heap.Collect();   // frees a
  heap.AddRoot(a);  // misuse: re-rooting a freed object
  EXPECT_TRUE(heap.Validate().Is(ErrorCode::kInternal));
  heap.RemoveRoot(a);
}

TEST(HeapValidateTest, NameTreeAlwaysValidates) {
  ns::NameTree tree;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Set("x/y" + std::to_string(i), "v",
                         ns::VersionStamp{static_cast<std::uint64_t>(i + 1), "r"})
                    .ok());
  }
  ASSERT_TRUE(*tree.Remove("x", ns::VersionStamp{1000, "r"}));
  tree.CollectGarbage();
  EXPECT_TRUE(tree.heap().Validate().ok());
}

}  // namespace
}  // namespace sdb
