// Tests for the diagnostic logging satellite: level parsing, threshold filtering,
// and the line format (level tag, thread id, basename:line).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"

namespace sdb {
namespace {

// Captures emitted log lines and restores the previous threshold/sink on exit.
class ScopedLogCapture {
 public:
  ScopedLogCapture() : saved_threshold_(GetLogThreshold()) {
    SetLogSinkForTest([this](LogLevel level, std::string_view line) {
      levels_.push_back(level);
      lines_.emplace_back(line);
    });
  }
  ~ScopedLogCapture() {
    SetLogSinkForTest(nullptr);
    SetLogThreshold(saved_threshold_);
  }

  const std::vector<std::string>& lines() const { return lines_; }
  const std::vector<LogLevel>& levels() const { return levels_; }

 private:
  LogLevel saved_threshold_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST(ParseLogLevel, AcceptsNamesAndAbbreviations) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("d"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("I"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("W"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("e"), LogLevel::kError);
}

TEST(ParseLogLevel, RejectsGarbage) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("2"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("debugg"), std::nullopt);
}

TEST(Logging, ThresholdFiltersLowerLevels) {
  ScopedLogCapture capture;
  SetLogThreshold(LogLevel::kWarning);
  SDB_LOG(kDebug) << "dropped debug";
  SDB_LOG(kInfo) << "dropped info";
  SDB_LOG(kWarning) << "kept warning";
  SDB_LOG(kError) << "kept error";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("kept warning"), std::string::npos);
  EXPECT_NE(capture.lines()[1].find("kept error"), std::string::npos);
  EXPECT_EQ(capture.levels()[0], LogLevel::kWarning);
  EXPECT_EQ(capture.levels()[1], LogLevel::kError);
}

TEST(Logging, LoweringThresholdAdmitsMoreLevels) {
  ScopedLogCapture capture;
  SetLogThreshold(LogLevel::kWarning);
  SDB_LOG(kInfo) << "invisible";
  ASSERT_TRUE(capture.lines().empty());
  SetLogThreshold(LogLevel::kDebug);
  SDB_LOG(kDebug) << "now visible";
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_NE(capture.lines()[0].find("now visible"), std::string::npos);
}

TEST(Logging, LineFormatHasTagThreadIdAndBasename) {
  ScopedLogCapture capture;
  SetLogThreshold(LogLevel::kDebug);
  SDB_LOG(kWarning) << "format probe";
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_EQ(line.rfind("[W t", 0), 0u) << line;  // "[<tag> t<id> ..." prefix
  EXPECT_NE(line.find("logging_test.cc:"), std::string::npos) << line;
  EXPECT_EQ(line.find('/'), std::string::npos) << "path not stripped: " << line;
  EXPECT_NE(line.find("] format probe"), std::string::npos) << line;
}

TEST(Logging, DistinctThreadsGetDistinctIds) {
  ScopedLogCapture capture;
  SetLogThreshold(LogLevel::kDebug);
  SDB_LOG(kInfo) << "from main";
  std::thread worker([] { SDB_LOG(kInfo) << "from worker"; });
  worker.join();
  ASSERT_EQ(capture.lines().size(), 2u);
  auto thread_token = [](const std::string& line) {
    std::size_t start = line.find(" t") + 2;
    return line.substr(start, line.find(' ', start) - start);
  };
  EXPECT_NE(thread_token(capture.lines()[0]), thread_token(capture.lines()[1]));
}

TEST(Logging, StreamFormattingWorks) {
  ScopedLogCapture capture;
  SetLogThreshold(LogLevel::kDebug);
  SDB_LOG(kInfo) << "answer=" << 42 << " pi=" << 3.5;
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_NE(capture.lines()[0].find("answer=42 pi=3.5"), std::string::npos);
}

}  // namespace
}  // namespace sdb
