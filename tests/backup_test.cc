// Tests for offline backup/restore and the page-size robustness sweep.
#include <gtest/gtest.h>

#include <map>

#include "src/core/backup.h"
#include "src/core/integrity.h"
#include "src/sim/kv_app.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class BackupTest : public ::testing::Test {
 protected:
  BackupTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  DatabaseOptions Options(std::string dir) {
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = std::move(dir);
    return options;
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(BackupTest, BackupAndRestoreRoundTrip) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options("live"));
    ASSERT_TRUE(db->Update(app.PreparePut("base", "1")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Update(app.PreparePut("tail", "2")).ok());
  }

  BackupInfo info = *BackupDatabaseDir(env_->fs(), "live", env_->fs(), "backup");
  EXPECT_EQ(info.version, 2u);
  EXPECT_GT(info.checkpoint_bytes, 0u);
  EXPECT_GT(info.log_bytes, 0u);

  // A backup is a valid database directory in its own right.
  auto report = *VerifyDatabaseDir(env_->fs(), "backup");
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.log_entries, 1u);

  // Restore to a third directory and open: full state recovered.
  ASSERT_TRUE(RestoreDatabaseDir(env_->fs(), "backup", env_->fs(), "restored").ok());
  TestApp restored;
  auto db = *Database::Open(restored, Options("restored"));
  EXPECT_EQ(restored.state["base"], "1");
  EXPECT_EQ(restored.state["tail"], "2");
  (void)db;
}

TEST_F(BackupTest, BackupRefusesNonEmptyDestination) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options("live"));
    ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  }
  TestApp other;
  { auto db = *Database::Open(other, Options("occupied")); }
  EXPECT_TRUE(BackupDatabaseDir(env_->fs(), "live", env_->fs(), "occupied")
                  .status()
                  .Is(ErrorCode::kFailedPrecondition));
}

TEST_F(BackupTest, BackupOfMissingSourceFails) {
  EXPECT_TRUE(BackupDatabaseDir(env_->fs(), "nowhere", env_->fs(), "backup")
                  .status()
                  .Is(ErrorCode::kNotFound));
}

TEST_F(BackupTest, BackupSurvivesSourceDestruction) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options("live"));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Update(app.PreparePut("key" + std::to_string(i), "v")).ok());
    }
  }
  ASSERT_TRUE(BackupDatabaseDir(env_->fs(), "live", env_->fs(), "backup").ok());
  // The source burns down (hard error on its checkpoint).
  ASSERT_TRUE(env_->fs().InjectBadFilePage("live/checkpoint1", 0).ok());
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  TestApp dead;
  EXPECT_FALSE(Database::Open(dead, Options("live")).ok());
  // The backup opens fine.
  TestApp saved;
  auto db = Database::Open(saved, Options("backup"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(saved.state.size(), 10u);
}

TEST_F(BackupTest, BackupCopiesLiveDeltaChainWhole) {
  // ISSUE 9 regression: a generation whose checkpoint is a delta chain must travel
  // as base + every delta + manifest — copying only checkpoint(version) (which does
  // not even exist) or only the base would quietly drop committed churn.
  DatabaseOptions live_options = Options("live");
  live_options.delta_checkpoint.enabled = true;
  live_options.delta_checkpoint.background_compaction = false;
  live_options.delta_checkpoint.compact_after_deltas = 1000;  // keep the chain live
  live_options.delta_checkpoint.compact_delta_base_ratio = 0;

  std::map<std::string, std::string> expected;
  sim::KvApp app;
  {
    auto db = *Database::Open(app, live_options);
    ASSERT_TRUE(db->Update(app.PreparePut("a", "a-v1")).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("b", "b-v1")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // delta2
    ASSERT_TRUE(db->Update(app.PreparePut("a", "a-v2")).ok());
    ASSERT_TRUE(db->Update(app.PrepareDelete("b")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // delta3
    ASSERT_TRUE(db->Update(app.PreparePut("tail", "t-v1")).ok());
    expected = app.state;
  }
  ASSERT_TRUE(*env_->fs().Exists("live/manifest"));

  BackupInfo info = *BackupDatabaseDir(env_->fs(), "live", env_->fs(), "backup");
  EXPECT_EQ(info.version, 3u);

  // The whole chain travelled.
  EXPECT_TRUE(*env_->fs().Exists("backup/checkpoint1"));
  EXPECT_TRUE(*env_->fs().Exists("backup/delta2"));
  EXPECT_TRUE(*env_->fs().Exists("backup/delta3"));
  EXPECT_TRUE(*env_->fs().Exists("backup/manifest"));

  // The backup verifies healthy as a chained directory in its own right...
  auto report = *VerifyDatabaseDir(env_->fs(), "backup");
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.chain_base, 1u);
  EXPECT_EQ(report.chain_deltas, (std::vector<std::uint64_t>{2, 3}));

  // ...and restores to the exact source state, log tail included.
  ASSERT_TRUE(RestoreDatabaseDir(env_->fs(), "backup", env_->fs(), "restored").ok());
  sim::KvApp restored;
  DatabaseOptions restored_options = Options("restored");
  restored_options.delta_checkpoint.enabled = true;
  auto db = Database::Open(restored, restored_options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(restored.state, expected);
}

TEST_F(BackupTest, IncrementalBackupCopiesOnlyTheLog) {
  TestApp app;
  auto db = *Database::Open(app, Options("live"));
  ASSERT_TRUE(db->Update(app.PreparePut("first", "1")).ok());

  // Initial full backup.
  auto initial = *IncrementalBackupDatabaseDir(env_->fs(), "live", env_->fs(), "backup");
  EXPECT_FALSE(initial.incremental);
  EXPECT_EQ(initial.info.version, 1u);

  // More updates, same generation: the refresh is incremental.
  ASSERT_TRUE(db->Update(app.PreparePut("second", "2")).ok());
  SimDiskStats before = env_->disk().stats();
  auto refresh = *IncrementalBackupDatabaseDir(env_->fs(), "live", env_->fs(), "backup");
  SimDiskStats after = env_->disk().stats();
  EXPECT_TRUE(refresh.incremental);
  // Only log pages were written to the backup, not the checkpoint.
  EXPECT_LT(after.bytes_written - before.bytes_written, initial.info.checkpoint_bytes + 4096);

  // A checkpoint bumps the generation: the next refresh is full again.
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->Update(app.PreparePut("third", "3")).ok());
  auto full = *IncrementalBackupDatabaseDir(env_->fs(), "live", env_->fs(), "backup");
  EXPECT_FALSE(full.incremental);
  EXPECT_EQ(full.info.version, 2u);
  EXPECT_FALSE(*env_->fs().Exists("backup/checkpoint1"));

  // The refreshed backup opens with all three updates.
  TestApp restored;
  auto opened = Database::Open(restored, Options("backup"));
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(restored.state.size(), 3u);
}

// --- page-size robustness sweep: the whole engine stack on unusual disk geometries ---

class PageSizeSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageSizeSweepTest, EngineRoundTripAndTornCommit) {
  std::size_t page_size = GetParam();
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  env_options.disk.page_size = page_size;
  SimEnv env(env_options);

  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.log_writer.page_size = page_size;
  options.log_replay_page_size = page_size;

  TestApp app;
  {
    auto db = *Database::Open(app, options);
    ASSERT_TRUE(db->Update(app.PreparePut("a", std::string(page_size * 2, 'x'))).ok());
    ASSERT_TRUE(db->Update(app.PreparePut("b", "small")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Update(app.PreparePut("c", std::string(page_size / 2, 'y'))).ok());

    // Torn final commit.
    CrashPlan plan(env.disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env.disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Update(app.PreparePut("torn", "z")).ok());
    env.disk().SetFaultInjector(nullptr);
  }
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  TestApp recovered;
  auto db = Database::Open(recovered, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(recovered.state["a"], std::string(page_size * 2, 'x'));
  EXPECT_EQ(recovered.state["b"], "small");
  EXPECT_EQ(recovered.state["c"], std::string(page_size / 2, 'y'));
  EXPECT_EQ(recovered.state.count("torn"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, PageSizeSweepTest,
                         ::testing::Values(64, 128, 256, 512, 1024, 4096));

}  // namespace
}  // namespace sdb
