// Concurrent checkpointing: the update stall is bounded by the snapshot-and-rotate
// step, the checkpoint is persisted in the background, and a crash at any point in
// between recovers through the pending marker + rotated-log chain (dual-log
// resolution). The suite name matches the CI thread-sanitizer filter (*Concurrent*),
// so every test here also runs under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "src/core/backup.h"
#include "src/core/database.h"
#include "src/core/integrity.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

// Forwarding Vfs that can fail one exact Open target or one numbered SyncDir call.
class FailingVfs : public Vfs {
 public:
  explicit FailingVfs(Vfs& base) : base_(base) {}

  std::string fail_open_path;          // Open of exactly this path fails while set
  std::atomic<int> fail_syncdir_at{0}; // 1-based SyncDir ordinal to fail (once)
  std::atomic<int> syncdirs{0};

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override {
    if (!fail_open_path.empty() && path == fail_open_path) {
      return IoError("injected open failure");
    }
    return base_.Open(path, mode);
  }
  Status Delete(std::string_view path) override { return base_.Delete(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return base_.Rename(from, to);
  }
  Result<bool> Exists(std::string_view path) override { return base_.Exists(path); }
  Result<std::vector<std::string>> List(std::string_view dir) override {
    return base_.List(dir);
  }
  Status CreateDir(std::string_view path) override { return base_.CreateDir(path); }
  Status SyncDir(std::string_view dir) override {
    int n = syncdirs.fetch_add(1) + 1;
    if (n == fail_syncdir_at.load()) {
      return IoError("injected syncdir failure");
    }
    return base_.SyncDir(dir);
  }

 private:
  Vfs& base_;
};

DatabaseOptions BaseOptions(SimEnv& env) {
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  return options;
}

bool FileExists(SimEnv& env, const std::string& path) {
  auto exists = env.fs().Exists(path);
  return exists.ok() && *exists;
}

TEST(ConcurrentCheckpointTest, AckedUpdatesFromConcurrentWritersSurviveCrash) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::string> acked;
  std::mutex mu;
  {
    TestApp app;
    auto db_or = Database::Open(app, BaseOptions(env));
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
          if (db->Update(app.PreparePut(key, "value-of-" + key)).ok()) {
            std::lock_guard<std::mutex> lock(mu);
            acked.push_back(key);
          }
        }
      });
    }
    // Checkpoints run concurrently with the writers; each release of the update
    // lock after the rotation lets commits flow while the snapshot persists.
    for (int c = 0; c < 5; ++c) {
      EXPECT_TRUE(db->Checkpoint().ok());
    }
    for (std::thread& w : writers) {
      w.join();
    }
  }

  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  TestApp recovered;
  auto db = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(acked.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& key : acked) {
    ASSERT_EQ(recovered.state.count(key), 1u) << "acknowledged update " << key << " lost";
    EXPECT_EQ(recovered.state[key], "value-of-" + key);
  }
}

TEST(ConcurrentCheckpointTest, AutoCheckpointPersistsInBackground) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  {
    TestApp app;
    DatabaseOptions options = BaseOptions(env);
    options.checkpoint_policy.every_n_updates = 3;
    auto db_or = Database::Open(app, options);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
    }
    // The rotation happened inline on the triggering update; the persist may still
    // be in flight on the background thread.
    EXPECT_EQ(db->stats().auto_checkpoints, 1u);
    EXPECT_EQ(db->live_log_version(), 2u);
    // Destruction drains the background persist.
  }
  TestApp recovered;
  auto db = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->current_version(), 2u);
  EXPECT_EQ(recovered.state.size(), 3u);
}

// The correctness crux: a cleanly-failed background persist leaves the engine
// committing acknowledged updates to the rotated log while the version files still
// name the old generation. Recovery must replay BOTH logs; the next checkpoint must
// collapse the chain.
TEST(ConcurrentCheckpointTest, FailedPersistLeavesRecoverableChainThatNextCheckpointCollapses) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  FailingVfs vfs(env.fs());

  {
    TestApp app;
    DatabaseOptions options = BaseOptions(env);
    options.vfs = &vfs;
    auto db_or = Database::Open(app, options);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);
    for (const char* key : {"u1", "u2", "u3"}) {
      ASSERT_TRUE(db->Update(app.PreparePut(key, std::string("val-") + key)).ok());
    }

    // Phase A succeeds (log rotated, marker durable); Phase B fails writing the
    // checkpoint. Clean abort: no poison, the rotated log stays live.
    vfs.fail_open_path = "db/checkpoint2";
    EXPECT_FALSE(db->Checkpoint().ok());
    vfs.fail_open_path.clear();
    EXPECT_EQ(db->current_version(), 1u);
    EXPECT_EQ(db->live_log_version(), 2u);
    EXPECT_TRUE(FileExists(env, "db/pending"));
    EXPECT_FALSE(FileExists(env, "db/checkpoint2"));  // no orphan from the abort

    // Updates keep committing — into the rotated log.
    for (const char* key : {"u4", "u5"}) {
      ASSERT_TRUE(db->Update(app.PreparePut(key, std::string("val-") + key)).ok());
    }
  }

  // The offline integrity checker understands the chain directory: healthy, and
  // the rotated log's entries are verified along with the main log's.
  {
    auto integrity = VerifyDatabaseDir(env.fs(), "db");
    ASSERT_TRUE(integrity.ok()) << integrity.status();
    EXPECT_TRUE(integrity->healthy());
    EXPECT_EQ(integrity->version, 1u);
    EXPECT_EQ(integrity->live_log_version, 2u);
    EXPECT_EQ(integrity->pending_logs, (std::vector<std::uint64_t>{2}));
  }

  // Power cut. Recovery loads checkpoint 1 and replays log 1 then log 2.
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  TestApp recovered;
  auto db_or = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);
  EXPECT_EQ(recovered.state.size(), 5u);
  for (const char* key : {"u1", "u2", "u3", "u4", "u5"}) {
    EXPECT_EQ(recovered.state[key], std::string("val-") + key);
  }
  EXPECT_EQ(db->stats().restart.pending_logs_replayed, 1u);
  EXPECT_EQ(db->current_version(), 1u);       // chain adopted lazily, not collapsed
  EXPECT_EQ(db->live_log_version(), 2u);

  // The next checkpoint collapses the chain past the orphaned generation number.
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(db->current_version(), 3u);
  EXPECT_EQ(db->live_log_version(), 3u);
  EXPECT_FALSE(FileExists(env, "db/pending"));
  EXPECT_FALSE(FileExists(env, "db/logfile1"));
  EXPECT_FALSE(FileExists(env, "db/logfile2"));
  EXPECT_TRUE(FileExists(env, "db/checkpoint3"));

  // And the collapsed state is durable across another power cut.
  db.reset();
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  TestApp final_state;
  auto reopened = Database::Open(final_state, BaseOptions(env));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->current_version(), 3u);
  EXPECT_EQ(final_state.state.size(), 5u);
}

TEST(ConcurrentCheckpointTest, ReadOnlyOpenReplaysPendingChain) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  FailingVfs vfs(env.fs());
  {
    TestApp app;
    DatabaseOptions options = BaseOptions(env);
    options.vfs = &vfs;
    auto db = Database::Open(app, options);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Update(app.PreparePut("a", "1")).ok());
    vfs.fail_open_path = "db/checkpoint2";
    EXPECT_FALSE((*db)->Checkpoint().ok());
    vfs.fail_open_path.clear();
    ASSERT_TRUE((*db)->Update(app.PreparePut("b", "2")).ok());
  }
  TestApp ro;
  auto db = Database::OpenReadOnly(ro, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->current_version(), 1u);
  EXPECT_EQ((*db)->live_log_version(), 2u);
  EXPECT_EQ((*db)->stats().restart.pending_logs_replayed, 1u);
  EXPECT_EQ(ro.state["a"], "1");
  EXPECT_EQ(ro.state["b"], "2");
  // Read-only: the chain is left exactly as found.
  EXPECT_TRUE(FileExists(env, "db/pending"));
}

TEST(ConcurrentCheckpointTest, BackupCopiesPendingChain) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  FailingVfs vfs(env.fs());
  {
    TestApp app;
    DatabaseOptions options = BaseOptions(env);
    options.vfs = &vfs;
    auto db = Database::Open(app, options);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Update(app.PreparePut("a", "1")).ok());
    vfs.fail_open_path = "db/checkpoint2";
    EXPECT_FALSE((*db)->Checkpoint().ok());
    vfs.fail_open_path.clear();
    ASSERT_TRUE((*db)->Update(app.PreparePut("b", "2")).ok());
  }
  ASSERT_TRUE(BackupDatabaseDir(env.fs(), "db", env.fs(), "backup").ok());
  ASSERT_TRUE(RestoreDatabaseDir(env.fs(), "backup", env.fs(), "restored").ok());

  TestApp ro;
  DatabaseOptions options = BaseOptions(env);
  options.dir = "restored";
  auto db = Database::OpenReadOnly(ro, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(ro.state["a"], "1");
  EXPECT_EQ(ro.state["b"], "2");  // committed to the rotated log after the failure
}

// Satellite regression: the ambiguity fail-stop now fires on the background persist
// thread, off every committing thread. It must still reject subsequent updates and
// checkpoints, and a reopen must recover cleanly.
TEST(ConcurrentCheckpointTest, AmbiguousBackgroundSwitchPoisonsUntilReopen) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  FailingVfs vfs(env.fs());

  {
    TestApp app;
    DatabaseOptions options = BaseOptions(env);
    options.vfs = &vfs;
    options.checkpoint_policy.every_n_updates = 3;
    auto db_or = Database::Open(app, options);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);

    // SyncDir sequence from open: #1 fresh-init dir sync, #2 version-file sync,
    // #3 pending-marker sync (rotation), #4 switch pre-sync, #5 the commit-point
    // sync after `newversion` holds synced content — failing it leaves the switch
    // ambiguous, and it happens on the background thread.
    vfs.fail_syncdir_at.store(5);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
    }

    // Checkpoint() waits for the background persist's slot, then must see poison.
    Status checkpoint = db->Checkpoint();
    ASSERT_FALSE(checkpoint.ok());
    EXPECT_TRUE(checkpoint.Is(ErrorCode::kInternal)) << checkpoint;
    Status update = db->Update(app.PreparePut("rejected", "x"));
    ASSERT_FALSE(update.ok());
    EXPECT_TRUE(update.Is(ErrorCode::kInternal)) << update;
  }

  // Reopen re-resolves the version (the switch's `newversion` content survived, so
  // it completes to generation 2) and recovers every acknowledged update.
  TestApp recovered;
  auto db = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(recovered.state.size(), 3u);
  ASSERT_TRUE((*db)->Update(recovered.PreparePut("post-reopen", "works")).ok());
  EXPECT_EQ(recovered.state["post-reopen"], "works");
}

TEST(ConcurrentCheckpointTest, StartupSweepRemovesOrphanedGenerations) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  {
    TestApp app;
    auto db = Database::Open(app, BaseOptions(env));
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Update(app.PreparePut("keep", "me")).ok());
  }
  // Plant stale generations an interrupted/aborted checkpoint could have left: a
  // higher-numbered orphan pair and a bare checkpoint (no marker names them).
  ASSERT_TRUE(WriteWholeFile(env.fs(), "db/checkpoint9", AsSpan(std::string_view("junk"))).ok());
  ASSERT_TRUE(WriteWholeFile(env.fs(), "db/logfile9", AsSpan(std::string_view("junk"))).ok());
  ASSERT_TRUE(WriteWholeFile(env.fs(), "db/checkpoint3", AsSpan(std::string_view("junk"))).ok());

  TestApp recovered;
  auto db = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE(FileExists(env, "db/checkpoint9"));
  EXPECT_FALSE(FileExists(env, "db/logfile9"));
  EXPECT_FALSE(FileExists(env, "db/checkpoint3"));
  EXPECT_EQ(recovered.state["keep"], "me");
  EXPECT_TRUE((*db)->Update(recovered.PreparePut("still", "works")).ok());
}

TEST(ConcurrentCheckpointTest, LegacyModeHoldsLockButStillCorrect) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  {
    TestApp app;
    DatabaseOptions options = BaseOptions(env);
    options.concurrent_checkpoint = false;
    options.checkpoint_policy.every_n_updates = 3;
    auto db_or = Database::Open(app, options);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
    }
    // Legacy persists synchronously under the lock: version has already advanced.
    EXPECT_EQ(db->stats().auto_checkpoints, 2u);
    EXPECT_EQ(db->current_version(), 3u);
    EXPECT_EQ(db->current_version(), db->live_log_version());
  }
  TestApp recovered;
  auto db = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(recovered.state.size(), 7u);
}

class SnapshotCountingApp : public TestApp {
 public:
  int captures = 0;
  std::atomic<int> closure_runs{0};

  Result<std::function<Result<Bytes>()>> CaptureSnapshot() override {
    ++captures;  // under the update lock
    SDB_ASSIGN_OR_RETURN(Bytes snapshot, SerializeState());
    auto holder = std::make_shared<Bytes>(std::move(snapshot));
    auto* runs = &closure_runs;
    return std::function<Result<Bytes>()>([holder, runs]() -> Result<Bytes> {
      runs->fetch_add(1);
      return std::move(*holder);
    });
  }
};

TEST(ConcurrentCheckpointTest, ApplicationSnapshotOverrideIsUsed) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  {
    SnapshotCountingApp app;
    auto db = Database::Open(app, BaseOptions(env));
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->Update(app.PreparePut("a", "1")).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ(app.captures, 1);
    EXPECT_EQ(app.closure_runs.load(), 1);
  }
  TestApp recovered;
  auto db = Database::Open(recovered, BaseOptions(env));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->current_version(), 2u);
  EXPECT_EQ(recovered.state["a"], "1");
}

}  // namespace
}  // namespace sdb
