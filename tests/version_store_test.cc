// Tests for VersionStore: the paper's checkpoint-switch protocol and restart cleanup.
#include <gtest/gtest.h>

#include "src/core/version_store.h"
#include "src/storage/sim_env.h"

namespace sdb {
namespace {

class VersionStoreTest : public ::testing::Test {
 protected:
  VersionStoreTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  VersionStore NewStore(VersionStoreOptions options = {}) {
    return VersionStore(env_->fs(), "db", options);
  }

  Status PutFile(std::string_view path, std::string_view content) {
    SDB_RETURN_IF_ERROR(WriteWholeFile(env_->fs(), path, AsSpan(content)));
    return env_->fs().SyncDir("db");
  }

  bool Exists(std::string_view path) { return *env_->fs().Exists(path); }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(VersionStoreTest, NamingMatchesPaper) {
  VersionStore store = NewStore();
  EXPECT_EQ(store.CheckpointPath(35), "db/checkpoint35");
  EXPECT_EQ(store.LogPath(35), "db/logfile35");
}

TEST_F(VersionStoreTest, FreshDirectoryDetected) {
  VersionStore store = NewStore();
  EXPECT_TRUE(*store.IsFresh());
  ASSERT_TRUE(PutFile("db/checkpoint1", "snapshot").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  EXPECT_FALSE(*store.IsFresh());
}

TEST_F(VersionStoreTest, RecoverAfterInit) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint1", "snapshot").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 1u);
  EXPECT_EQ(state.checkpoint_path, "db/checkpoint1");
  EXPECT_FALSE(state.finished_interrupted_switch);
}

TEST_F(VersionStoreTest, RecoverOnEmptyDirFails) {
  VersionStore store = NewStore();
  EXPECT_TRUE(store.Recover().status().Is(ErrorCode::kNotFound));
}

TEST_F(VersionStoreTest, CommitSwitchAdvancesVersionAndCleans) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint1", "v1").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "log1").ok());
  ASSERT_TRUE(store.InitFresh().ok());

  ASSERT_TRUE(PutFile("db/checkpoint2", "v2").ok());
  ASSERT_TRUE(PutFile("db/logfile2", "").ok());
  ASSERT_TRUE(store.CommitSwitch(1, 2).ok());

  EXPECT_FALSE(Exists("db/checkpoint1"));
  EXPECT_FALSE(Exists("db/logfile1"));
  EXPECT_FALSE(Exists("db/newversion"));
  EXPECT_TRUE(Exists("db/version"));
  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 2u);
}

TEST_F(VersionStoreTest, InterruptedSwitchAfterCommitPointFinishesOnRecover) {
  // Simulate a crash between the newversion commit and the cleanup: both generations
  // plus `version` (old) and `newversion` (new) exist.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint1", "v1").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  ASSERT_TRUE(PutFile("db/checkpoint2", "v2").ok());
  ASSERT_TRUE(PutFile("db/logfile2", "").ok());
  ASSERT_TRUE(PutFile("db/newversion", "2").ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 2u);
  EXPECT_TRUE(state.finished_interrupted_switch);
  EXPECT_FALSE(Exists("db/checkpoint1"));
  EXPECT_FALSE(Exists("db/logfile1"));
  EXPECT_FALSE(Exists("db/newversion"));
  // `version` now names generation 2.
  Bytes version_bytes = *ReadWholeFile(env_->fs(), "db/version");
  EXPECT_EQ(AsStringView(AsSpan(version_bytes)), "2");
}

TEST_F(VersionStoreTest, PartialSwitchBeforeCommitPointRollsBack) {
  // Crash after writing checkpoint2/logfile2 but before newversion: recovery stays on
  // version 1 and deletes the partial generation.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint1", "v1").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  ASSERT_TRUE(PutFile("db/checkpoint2", "partial").ok());
  ASSERT_TRUE(PutFile("db/logfile2", "").ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 1u);
  EXPECT_FALSE(Exists("db/checkpoint2"));
  EXPECT_FALSE(Exists("db/logfile2"));
}

TEST_F(VersionStoreTest, InvalidNewversionIgnoredAndDeleted) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint1", "v1").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  ASSERT_TRUE(PutFile("db/newversion", "not a number").ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 1u);
  EXPECT_FALSE(Exists("db/newversion"));
}

TEST_F(VersionStoreTest, NewversionNamingMissingGenerationIgnored) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint1", "v1").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  // newversion claims 9 but checkpoint9/logfile9 do not exist.
  ASSERT_TRUE(PutFile("db/newversion", "9").ok());
  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 1u);
}

TEST_F(VersionStoreTest, StaleGenerationsAndTmpFilesRemoved) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint5", "v5").ok());
  ASSERT_TRUE(PutFile("db/logfile5", "").ok());
  ASSERT_TRUE(PutFile("db/version", "5").ok());
  ASSERT_TRUE(PutFile("db/checkpoint3", "old").ok());
  ASSERT_TRUE(PutFile("db/logfile3", "old").ok());
  ASSERT_TRUE(PutFile("db/checkpoint6.tmp", "partial").ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 5u);
  EXPECT_FALSE(Exists("db/checkpoint3"));
  EXPECT_FALSE(Exists("db/logfile3"));
  EXPECT_FALSE(Exists("db/checkpoint6.tmp"));
  EXPECT_GE(state.removed_files.size(), 3u);
}

TEST_F(VersionStoreTest, RetentionKeepsPreviousGeneration) {
  VersionStoreOptions options;
  options.keep_previous_checkpoint = true;
  VersionStore store = NewStore(options);
  ASSERT_TRUE(PutFile("db/checkpoint1", "v1").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "log1").ok());
  ASSERT_TRUE(store.InitFresh().ok());
  ASSERT_TRUE(PutFile("db/checkpoint2", "v2").ok());
  ASSERT_TRUE(PutFile("db/logfile2", "").ok());
  ASSERT_TRUE(store.CommitSwitch(1, 2).ok());

  // Generation 1 retained.
  EXPECT_TRUE(Exists("db/checkpoint1"));
  EXPECT_TRUE(Exists("db/logfile1"));

  ASSERT_TRUE(PutFile("db/checkpoint3", "v3").ok());
  ASSERT_TRUE(PutFile("db/logfile3", "").ok());
  ASSERT_TRUE(store.CommitSwitch(2, 3).ok());

  // Now generation 1 is gone, generation 2 retained.
  EXPECT_FALSE(Exists("db/checkpoint1"));
  EXPECT_TRUE(Exists("db/checkpoint2"));

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 3u);
  ASSERT_TRUE(state.previous_version.has_value());
  EXPECT_EQ(*state.previous_version, 2u);
}

// --- delta-chain manifest ---

TEST_F(VersionStoreTest, ManifestRoundTripsAndAbsenceIsNullopt) {
  VersionStore store = NewStore();
  ASSERT_TRUE(env_->fs().CreateDir("db").ok());
  EXPECT_FALSE((*store.ReadManifest()).has_value());

  DeltaChain chain;
  chain.base = 2;
  chain.deltas = {3, 5};
  ASSERT_TRUE(store.PublishManifest(chain).ok());

  auto read = *store.ReadManifest();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->base, 2u);
  EXPECT_EQ(read->deltas, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(read->top(), 5u);
  EXPECT_EQ(read->length(), 3u);
}

TEST_F(VersionStoreTest, RecoverResolvesDeltaChain) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "base").ok());
  ASSERT_TRUE(PutFile("db/delta3", "d3").ok());
  ASSERT_TRUE(PutFile("db/delta4", "d4").ok());
  ASSERT_TRUE(PutFile("db/logfile4", "").ok());
  ASSERT_TRUE(PutFile("db/version", "4").ok());
  ASSERT_TRUE(store.PublishManifest({2, {3, 4}}).ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 4u);
  EXPECT_EQ(state.chain.base, 2u);
  EXPECT_EQ(state.chain.deltas, (std::vector<std::uint64_t>{3, 4}));
  // checkpoint_path stays the nominal path for `version`; readers follow the chain
  // (CheckpointPath(chain.base) + DeltaPath(...)) when it has deltas.
  EXPECT_EQ(state.checkpoint_path, "db/checkpoint4");
  // Every chain file survived cleanup.
  EXPECT_TRUE(Exists("db/checkpoint2"));
  EXPECT_TRUE(Exists("db/delta3"));
  EXPECT_TRUE(Exists("db/delta4"));
}

TEST_F(VersionStoreTest, RecoverTruncatesOrphanDeltasPastCurrentVersion) {
  // delta6 was persisted but its switch never committed: the manifest lists it, the
  // version files do not. Recovery truncates the manifest and sweeps the orphan.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "base").ok());
  ASSERT_TRUE(PutFile("db/delta3", "d3").ok());
  ASSERT_TRUE(PutFile("db/delta4", "d4").ok());
  ASSERT_TRUE(PutFile("db/delta6", "orphan").ok());
  ASSERT_TRUE(PutFile("db/logfile4", "").ok());
  ASSERT_TRUE(PutFile("db/version", "4").ok());
  ASSERT_TRUE(store.PublishManifest({2, {3, 4, 6}}).ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 4u);
  EXPECT_EQ(state.chain.deltas, (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(state.orphan_deltas, (std::vector<std::uint64_t>{6}));
  EXPECT_FALSE(Exists("db/delta6"));
  // The truncated manifest is what a second recovery reads.
  auto read = *store.ReadManifest();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->deltas, (std::vector<std::uint64_t>{3, 4}));
}

TEST_F(VersionStoreTest, RecoverSweepsManifestSupersededByFullSwitch) {
  // A full-checkpoint switch (or a completed compaction) left the chain behind:
  // checkpoint5 is self-contained, the manifest still describes versions <= 4.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint5", "full").ok());
  ASSERT_TRUE(PutFile("db/logfile5", "").ok());
  ASSERT_TRUE(PutFile("db/version", "5").ok());
  ASSERT_TRUE(PutFile("db/checkpoint2", "old base").ok());
  ASSERT_TRUE(PutFile("db/delta3", "d3").ok());
  ASSERT_TRUE(PutFile("db/delta4", "d4").ok());
  ASSERT_TRUE(store.PublishManifest({2, {3, 4}}).ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 5u);
  EXPECT_TRUE(state.manifest_superseded);
  EXPECT_FALSE(state.chain.has_deltas());
  EXPECT_EQ(state.chain.base, 5u);
  EXPECT_FALSE(Exists("db/manifest"));
  EXPECT_FALSE(Exists("db/checkpoint2"));
  EXPECT_FALSE(Exists("db/delta3"));
  EXPECT_FALSE(Exists("db/delta4"));
}

TEST_F(VersionStoreTest, GarbledManifestIsLoudCorruption) {
  // The manifest is atomic-rename published, so garbled content is damage, not a
  // torn write: treating it as absent would recover checkpoint(base) as the full
  // state and silently drop every delta.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "base").ok());
  ASSERT_TRUE(PutFile("db/delta3", "d3").ok());
  ASSERT_TRUE(PutFile("db/logfile3", "").ok());
  ASSERT_TRUE(PutFile("db/version", "3").ok());
  ASSERT_TRUE(PutFile("db/manifest", "not a manifest").ok());

  EXPECT_TRUE(store.Recover().status().Is(ErrorCode::kCorruption));
}

TEST_F(VersionStoreTest, MissingChainDeltaIsLoudCorruption) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "base").ok());
  ASSERT_TRUE(PutFile("db/logfile4", "").ok());
  ASSERT_TRUE(PutFile("db/version", "4").ok());
  ASSERT_TRUE(store.PublishManifest({2, {3, 4}}).ok());
  // delta3 never written (or lost): the recipe references a file that is gone.
  ASSERT_TRUE(PutFile("db/delta4", "d4").ok());

  EXPECT_TRUE(store.Recover().status().Is(ErrorCode::kCorruption));
}

TEST_F(VersionStoreTest, VersionInsideChainButUnlistedIsLoudCorruption) {
  // version 3 sits strictly inside (base, top] but the manifest does not list it —
  // no composition recipe can reach it; guessing would drop committed state.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "base").ok());
  ASSERT_TRUE(PutFile("db/delta4", "d4").ok());
  ASSERT_TRUE(PutFile("db/logfile3", "").ok());
  ASSERT_TRUE(PutFile("db/version", "3").ok());
  ASSERT_TRUE(store.PublishManifest({2, {4}}).ok());

  EXPECT_TRUE(store.Recover().status().Is(ErrorCode::kCorruption));
}

TEST_F(VersionStoreTest, StaleSweepNeverReclaimsChainReferencedFiles) {
  // Regression for the stale sweep: generation-numbered files BELOW the current
  // version are normally stale, but a delta chain legitimately references them
  // (checkpoint2 and delta3 here, under version 4). The sweep must remove the truly
  // stale generations and tmp litter while keeping every chain-referenced file.
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "base").ok());
  ASSERT_TRUE(PutFile("db/delta3", "d3").ok());
  ASSERT_TRUE(PutFile("db/delta4", "d4").ok());
  ASSERT_TRUE(PutFile("db/logfile4", "").ok());
  ASSERT_TRUE(PutFile("db/version", "4").ok());
  ASSERT_TRUE(store.PublishManifest({2, {3, 4}}).ok());
  // Truly stale litter: a pre-chain generation and interrupted temp files.
  ASSERT_TRUE(PutFile("db/checkpoint1", "ancient").ok());
  ASSERT_TRUE(PutFile("db/logfile1", "ancient").ok());
  ASSERT_TRUE(PutFile("db/checkpoint5.tmp", "partial").ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 4u);
  EXPECT_FALSE(Exists("db/checkpoint1"));
  EXPECT_FALSE(Exists("db/logfile1"));
  EXPECT_FALSE(Exists("db/checkpoint5.tmp"));
  EXPECT_TRUE(Exists("db/checkpoint2"));
  EXPECT_TRUE(Exists("db/delta3"));
  EXPECT_TRUE(Exists("db/delta4"));
  EXPECT_TRUE(Exists("db/manifest"));
}

TEST_F(VersionStoreTest, UnreadableVersionFileFallsBackToNewversion) {
  VersionStore store = NewStore();
  ASSERT_TRUE(PutFile("db/checkpoint2", "v2").ok());
  ASSERT_TRUE(PutFile("db/logfile2", "").ok());
  ASSERT_TRUE(PutFile("db/version", "1").ok());
  ASSERT_TRUE(PutFile("db/newversion", "2").ok());
  ASSERT_TRUE(env_->fs().InjectBadFilePage("db/version", 0).ok());

  VersionState state = *store.Recover();
  EXPECT_EQ(state.version, 2u);
}

}  // namespace
}  // namespace sdb
