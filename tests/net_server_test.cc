// End-to-end tests for the TCP transport (src/net): the epoll event-loop server in
// front of an RpcServer, the async pipelined client channel, and the batch-ingest
// path that carries decoded updates from many sockets into ONE group-commit fsync.
// Everything runs over real loopback sockets; connection counts are scaled for CI
// (bench_network pushes the thousand-connection shape).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/dirsvc/directory_service_rpc.h"
#include "src/nameserver/name_service_rpc.h"
#include "src/net/client.h"
#include "src/net/ingest.h"
#include "src/net/server.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb::net {
namespace {

using ::sdb::testing::TestApp;

struct EchoRequest {
  std::string text;
  SDB_PICKLE_FIELDS(EchoRequest, text)
};
struct EchoResponse {
  std::string text;
  SDB_PICKLE_FIELDS(EchoResponse, text)
};
struct BlobRequest {
  std::uint32_t size = 0;
  SDB_PICKLE_FIELDS(BlobRequest, size)
};
struct BlobResponse {
  Bytes blob;
  SDB_PICKLE_FIELDS(BlobResponse, blob)
};
struct PutRequest {
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(PutRequest, key, value)
};
struct PutAck {
  std::uint8_t ok = 1;
  SDB_PICKLE_FIELDS(PutAck, ok)
};

SimEnv MakeEnv() {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  return SimEnv(env_options);
}

DatabaseOptions DbOptions(SimEnv& env) {
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  return options;
}

std::unique_ptr<NetChannel> MustConnect(std::uint16_t port,
                                        NetChannelOptions options = {}) {
  auto channel = NetChannel::Connect("127.0.0.1", port, options);
  EXPECT_TRUE(channel.ok()) << channel.status();
  return channel.ok() ? std::move(*channel) : nullptr;
}

TEST(NetServerTest, TypedCallsRoundTripOverRealSockets) {
  rpc::RpcServer rpc;
  rpc::RegisterMethod<EchoRequest, EchoResponse>(
      rpc, "Echo", "Shout", [](const EchoRequest& request) -> Result<EchoResponse> {
        return EchoResponse{request.text + "!"};
      });
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();

  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);
  auto response = rpc::CallMethod<EchoRequest, EchoResponse>(*channel, "Echo", "Shout",
                                                             EchoRequest{"hello"});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->text, "hello!");

  // Application errors travel inside the response, not as transport failures.
  auto missing = rpc::CallMethod<EchoRequest, EchoResponse>(*channel, "Echo", "NoSuch",
                                                            EchoRequest{"x"});
  EXPECT_TRUE(missing.status().Is(ErrorCode::kNotFound)) << missing.status();

  channel->Close();
  (*server)->Stop();
  NetServer::Stats stats = (*server)->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GE(stats.frames_in, 2u);
  EXPECT_GE(stats.frames_out, 2u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
}

TEST(NetServerTest, PipelinedRequestsCompleteOutOfOrder) {
  // One connection, two requests in flight: a slow call submitted first must not
  // head-of-line-block a fast call submitted second — responses are matched by
  // frame id, and dispatch workers run independently.
  std::atomic<bool> slow_finished{false};
  rpc::RpcServer rpc;
  rpc::RegisterMethod<EchoRequest, EchoResponse>(
      rpc, "Speed", "Slow",
      [&slow_finished](const EchoRequest& request) -> Result<EchoResponse> {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        slow_finished.store(true);
        return EchoResponse{"slow:" + request.text};
      });
  rpc::RegisterMethod<EchoRequest, EchoResponse>(
      rpc, "Speed", "Fast", [](const EchoRequest& request) -> Result<EchoResponse> {
        return EchoResponse{"fast:" + request.text};
      });
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();
  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);

  auto slow_id = SubmitCall(*channel, "Speed", "Slow", EchoRequest{"a"});
  ASSERT_TRUE(slow_id.ok()) << slow_id.status();
  // Let a worker pick the slow request up before the fast one is queued, so the
  // two cannot land in one gulp.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto fast_id = SubmitCall(*channel, "Speed", "Fast", EchoRequest{"b"});
  ASSERT_TRUE(fast_id.ok()) << fast_id.status();

  auto fast = AwaitCall<EchoResponse>(*channel, *fast_id);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(fast->text, "fast:b");
  EXPECT_FALSE(slow_finished.load())
      << "fast response should have arrived while the slow call was still running";

  auto slow = AwaitCall<EchoResponse>(*channel, *slow_id);
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(slow->text, "slow:a");
}

TEST(NetServerTest, LargeResponsesStreamAsChunks) {
  rpc::RpcServer rpc;
  rpc::RegisterMethod<BlobRequest, BlobResponse>(
      rpc, "Blob", "Get", [](const BlobRequest& request) -> Result<BlobResponse> {
        BlobResponse response;
        response.blob.resize(request.size);
        for (std::size_t i = 0; i < response.blob.size(); ++i) {
          response.blob[i] = static_cast<std::uint8_t>(i * 131 + 17);
        }
        return response;
      });
  NetServerOptions options;
  options.chunk_payload = 16 * 1024;
  auto server = NetServer::Start(rpc, options);
  ASSERT_TRUE(server.ok()) << server.status();
  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);

  constexpr std::uint32_t kSize = 300 * 1024;
  auto response = rpc::CallMethod<BlobRequest, BlobResponse>(*channel, "Blob", "Get",
                                                             BlobRequest{kSize});
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->blob.size(), kSize);
  for (std::size_t i = 0; i < response->blob.size(); ++i) {
    ASSERT_EQ(response->blob[i], static_cast<std::uint8_t>(i * 131 + 17)) << i;
  }
  EXPECT_GE((*server)->stats().chunked_responses, 1u);
}

TEST(NetServerTest, ManyConnectionsShareOneServer) {
  rpc::RpcServer rpc;
  rpc::RegisterMethod<EchoRequest, EchoResponse>(
      rpc, "Echo", "Shout", [](const EchoRequest& request) -> Result<EchoResponse> {
        return EchoResponse{request.text};
      });
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();

  // Scaled-down version of the bench's thousand-connection sweep: every channel is
  // its own socket, all open at once, all answered by the one event loop.
  constexpr int kConnections = 64;
  std::vector<std::unique_ptr<NetChannel>> channels;
  for (int i = 0; i < kConnections; ++i) {
    channels.push_back(MustConnect((*server)->port()));
    ASSERT_NE(channels.back(), nullptr) << "connection " << i;
  }
  std::vector<std::uint64_t> ids(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    auto id = SubmitCall(*channels[static_cast<std::size_t>(i)], "Echo", "Shout",
                         EchoRequest{"c" + std::to_string(i)});
    ASSERT_TRUE(id.ok()) << id.status();
    ids[static_cast<std::size_t>(i)] = *id;
  }
  for (int i = 0; i < kConnections; ++i) {
    auto response = AwaitCall<EchoResponse>(*channels[static_cast<std::size_t>(i)],
                                            ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->text, "c" + std::to_string(i));
  }
  EXPECT_EQ((*server)->stats().connections_accepted,
            static_cast<std::uint64_t>(kConnections));
}

TEST(NetServerTest, PipelinedUpdatesFromManySocketsCoalesceFsyncs) {
  // The tentpole claim end to end: updates pipelined on several real connections
  // flow through planner -> CommitMany -> Database::UpdateMany -> group commit, so
  // the whole run costs well under one fsync per update.
  SimEnv env = MakeEnv();
  TestApp app;
  auto db_or = Database::Open(app, DbOptions(env));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  rpc::RpcServer rpc;
  auto sink = std::make_shared<DatabaseUpdateSink>(*db);
  rpc::RegisterUpdateMethod<PutRequest, PutAck>(
      rpc, "Kv", "Put", sink,
      [&app](const PutRequest& request) -> Result<rpc::TypedUpdatePlan<PutAck>> {
        return rpc::TypedUpdatePlan<PutAck>{
            app.PreparePut(request.key, request.value), PutAck{}};
      });
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();

  constexpr int kChannels = 4;
  constexpr int kPerChannel = 32;
  const std::uint64_t syncs_before = db->stats().group_commit.syncs;
  std::vector<std::unique_ptr<NetChannel>> channels;
  for (int c = 0; c < kChannels; ++c) {
    channels.push_back(MustConnect((*server)->port()));
    ASSERT_NE(channels.back(), nullptr);
  }
  // Submit everything before awaiting anything: the event loop keeps reading while
  // workers commit, so queued updates pile into shared ingest batches.
  std::vector<std::vector<std::uint64_t>> ids(kChannels);
  for (int c = 0; c < kChannels; ++c) {
    for (int i = 0; i < kPerChannel; ++i) {
      std::string key = "c" + std::to_string(c) + "-k" + std::to_string(i);
      auto id = SubmitCall(*channels[static_cast<std::size_t>(c)], "Kv", "Put",
                           PutRequest{key, "v-" + key});
      ASSERT_TRUE(id.ok()) << id.status();
      ids[static_cast<std::size_t>(c)].push_back(*id);
    }
  }
  for (int c = 0; c < kChannels; ++c) {
    for (std::uint64_t id : ids[static_cast<std::size_t>(c)]) {
      auto ack = AwaitCall<PutAck>(*channels[static_cast<std::size_t>(c)], id);
      ASSERT_TRUE(ack.ok()) << ack.status();
    }
  }

  constexpr std::uint64_t kTotal = kChannels * kPerChannel;
  EXPECT_EQ(app.state.size(), static_cast<std::size_t>(kTotal));
  DatabaseStats stats = db->stats();
  EXPECT_EQ(stats.group_commit.records_committed, kTotal);
  const std::uint64_t syncs = stats.group_commit.syncs - syncs_before;
  EXPECT_LT(syncs, kTotal) << "pipelined updates should share fsyncs";

  NetServer::Stats net = (*server)->stats();
  EXPECT_EQ(net.ingest_updates, kTotal);
  EXPECT_GE(net.ingest_batches, 1u);
  EXPECT_LT(net.ingest_batches, kTotal)
      << "workers should carry many updates per CommitMany";

  // The acknowledged state survives a reopen intact.
  channels.clear();
  (*server)->Stop();
  db.reset();
  TestApp recovered;
  auto reopened = Database::Open(recovered, DbOptions(env));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(recovered.state, app.state);
}

TEST(NetServerTest, AbruptDisconnectMidPipelineLosesNothingAcknowledged) {
  // A client dies mid-connection with responses still in flight. Every update the
  // client AWAITED must survive recovery; everything else is allowed either way
  // (it was never acknowledged) — but nothing outside the submitted set may appear.
  SimEnv env = MakeEnv();
  TestApp app;
  auto db_or = Database::Open(app, DbOptions(env));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  rpc::RpcServer rpc;
  auto sink = std::make_shared<DatabaseUpdateSink>(*db);
  rpc::RegisterUpdateMethod<PutRequest, PutAck>(
      rpc, "Kv", "Put", sink,
      [&app](const PutRequest& request) -> Result<rpc::TypedUpdatePlan<PutAck>> {
        return rpc::TypedUpdatePlan<PutAck>{
            app.PreparePut(request.key, request.value), PutAck{}};
      });
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();

  constexpr int kSubmitted = 60;
  constexpr int kAwaited = 30;
  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kSubmitted; ++i) {
    auto id = SubmitCall(*channel, "Kv", "Put",
                         PutRequest{"k" + std::to_string(i), "v" + std::to_string(i)});
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  for (int i = 0; i < kAwaited; ++i) {
    auto ack = AwaitCall<PutAck>(*channel, ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(ack.ok()) << ack.status();
  }
  // Die abruptly: close the socket with ~half the responses unawaited, then take
  // the server (and the "machine") down.
  channel->Close();
  channel.reset();
  (*server)->Stop();
  db.reset();

  TestApp recovered;
  auto reopened = Database::Open(recovered, DbOptions(env));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  for (int i = 0; i < kAwaited; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_EQ(recovered.state.count(key), 1u) << "acknowledged key lost: " << key;
    EXPECT_EQ(recovered.state[key], "v" + std::to_string(i));
  }
  for (const auto& [key, value] : recovered.state) {
    ASSERT_EQ(key.rfind('k', 0), 0u) << "phantom key: " << key;
    int i = std::stoi(key.substr(1));
    EXPECT_GE(i, 0);
    EXPECT_LT(i, kSubmitted);
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST(NetServerTest, GarbageBytesTearTheConnectionDownCleanly) {
  rpc::RpcServer rpc;
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  Bytes garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(0xA5 ^ i);
  }
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  // The decoder condemns the stream and the server closes the socket: the read
  // side sees EOF (or a reset), never a hang and never a response frame.
  char buffer[64];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  EXPECT_LE(n, 0) << "server answered a garbage stream";
  ::close(fd);

  // Stop() flushes the loop, so the counters are settled.
  (*server)->Stop();
  NetServer::Stats stats = (*server)->stats();
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
}

TEST(NetServerTest, NameServiceStubsWorkUnchangedOverTcp) {
  // The existing typed client (written for LoopbackChannel) pointed at a real
  // socket: NameServer served over TCP with Set/Remove/CompareAndSet registered as
  // batchable updates through the engine's ingest sink.
  SimEnv env = MakeEnv();
  ns::NameServerOptions options;
  options.db.vfs = &env.fs();
  options.db.dir = "ns";
  options.db.clock = &env.clock();
  options.replica_id = "replica-1";
  auto ns_or = ns::NameServer::Open(options);
  ASSERT_TRUE(ns_or.ok()) << ns_or.status();
  std::unique_ptr<ns::NameServer> name_server = std::move(*ns_or);

  rpc::RpcServer rpc;
  ns::RegisterNameService(rpc, *name_server,
                          std::make_shared<DatabaseUpdateSink>(name_server->database()));
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();
  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);

  ns::NameServiceClient client(*channel);
  ASSERT_TRUE(client.Set("machines/fast", "10.0.0.1").ok());
  ASSERT_TRUE(client.Set("machines/slow", "10.0.0.2").ok());
  auto value = client.Lookup("machines/fast");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(*value, "10.0.0.1");
  EXPECT_TRUE(client.CompareAndSet("machines/fast", "10.0.0.1", "10.0.0.3").ok());
  EXPECT_TRUE(
      client.CompareAndSet("machines/fast", "10.0.0.1", "10.0.0.9").Is(
          ErrorCode::kFailedPrecondition));
  ASSERT_TRUE(client.Remove("machines/slow").ok());
  EXPECT_TRUE(client.Lookup("machines/slow").status().Is(ErrorCode::kNotFound));
  auto bindings = client.Export("");
  ASSERT_TRUE(bindings.ok()) << bindings.status();
  ASSERT_EQ(bindings->size(), 1u);
  EXPECT_EQ((*bindings)[0].first, "machines/fast");
  EXPECT_EQ((*bindings)[0].second, "10.0.0.3");
}

TEST(NetServerTest, DirectoryServiceStubsWorkUnchangedOverTcp) {
  SimEnv env = MakeEnv();
  dirsvc::DirectoryServiceOptions options;
  options.db.vfs = &env.fs();
  options.db.dir = "dirsvc";
  options.db.clock = &env.clock();
  auto svc_or = dirsvc::DirectoryService::Open(std::move(options));
  ASSERT_TRUE(svc_or.ok()) << svc_or.status();
  std::unique_ptr<dirsvc::DirectoryService> service = std::move(*svc_or);

  rpc::RpcServer rpc;
  dirsvc::RegisterDirectoryService(rpc, *service);
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();
  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);

  dirsvc::DirectoryServiceClient client(*channel);
  ASSERT_TRUE(client.MkDir("home", "root", 1).ok());
  ASSERT_TRUE(client.CreateFile("home/notes.txt", "root", 42, 2).ok());
  auto attrs = client.Stat("home/notes.txt");
  ASSERT_TRUE(attrs.ok()) << attrs.status();
  EXPECT_EQ(attrs->size, 42u);
  auto names = client.ReadDir("home");
  ASSERT_TRUE(names.ok()) << names.status();
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "notes.txt");
}

TEST(NetServerTest, ClosedChannelFailsPendingAndFutureCalls) {
  rpc::RpcServer rpc;
  rpc::RegisterMethod<EchoRequest, EchoResponse>(
      rpc, "Echo", "Shout", [](const EchoRequest& request) -> Result<EchoResponse> {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return EchoResponse{request.text};
      });
  auto server = NetServer::Start(rpc);
  ASSERT_TRUE(server.ok()) << server.status();
  auto channel = MustConnect((*server)->port());
  ASSERT_NE(channel, nullptr);

  auto id = SubmitCall(*channel, "Echo", "Shout", EchoRequest{"late"});
  ASSERT_TRUE(id.ok()) << id.status();
  std::thread closer([&channel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    channel->Close();
  });
  // Await either collected the response before the close or fails kUnavailable;
  // after Close every new call fails immediately.
  (void)channel->Await(*id);
  closer.join();
  auto after = SubmitCall(*channel, "Echo", "Shout", EchoRequest{"dead"});
  EXPECT_TRUE(after.status().Is(ErrorCode::kUnavailable)) << after.status();
}

}  // namespace
}  // namespace sdb::net
