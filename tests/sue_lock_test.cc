// Tests for SueLock: the paper's shared/update/exclusive compatibility matrix under
// real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/sue_lock.h"

namespace sdb {
namespace {

using namespace std::chrono_literals;

// Spin-waits until `predicate` or the deadline; returns whether it held.
template <typename Pred>
bool EventuallyTrue(Pred predicate, std::chrono::milliseconds deadline = 2000ms) {
  auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

TEST(SueLockTest, MultipleSharedHoldersCoexist) {
  SueLock lock;
  lock.AcquireShared();
  lock.AcquireShared();
  EXPECT_EQ(lock.snapshot().shared_holders, 2u);
  lock.ReleaseShared();
  lock.ReleaseShared();
  EXPECT_EQ(lock.snapshot().shared_holders, 0u);
}

TEST(SueLockTest, SharedCompatibleWithUpdate) {
  SueLock lock;
  lock.AcquireUpdate();
  // A reader must get in while update (not exclusive) is held.
  std::atomic<bool> got_shared{false};
  std::thread reader([&] {
    lock.AcquireShared();
    got_shared = true;
    lock.ReleaseShared();
  });
  EXPECT_TRUE(EventuallyTrue([&] { return got_shared.load(); }));
  reader.join();
  lock.ReleaseUpdate();
}

TEST(SueLockTest, UpdateExcludesUpdate) {
  SueLock lock;
  lock.AcquireUpdate();
  std::atomic<bool> second_got_it{false};
  std::thread contender([&] {
    lock.AcquireUpdate();
    second_got_it = true;
    lock.ReleaseUpdate();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(second_got_it.load());  // still blocked
  lock.ReleaseUpdate();
  EXPECT_TRUE(EventuallyTrue([&] { return second_got_it.load(); }));
  contender.join();
}

TEST(SueLockTest, UpgradeWaitsForReadersToDrain) {
  SueLock lock;
  lock.AcquireShared();
  lock.AcquireUpdate();

  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    lock.UpgradeToExclusive();
    upgraded = true;
    lock.DowngradeToUpdate();
    lock.ReleaseUpdate();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(upgraded.load());  // reader still in
  lock.ReleaseShared();
  EXPECT_TRUE(EventuallyTrue([&] { return upgraded.load(); }));
  upgrader.join();
}

TEST(SueLockTest, ExclusiveBlocksNewReaders) {
  SueLock lock;
  lock.AcquireUpdate();
  lock.UpgradeToExclusive();

  std::atomic<bool> reader_in{false};
  std::thread reader([&] {
    lock.AcquireShared();
    reader_in = true;
    lock.ReleaseShared();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(reader_in.load());
  lock.DowngradeToUpdate();
  EXPECT_TRUE(EventuallyTrue([&] { return reader_in.load(); }));
  reader.join();
  lock.ReleaseUpdate();
}

TEST(SueLockTest, PendingUpgradeBlocksNewReaders) {
  // New readers queue behind a waiting upgrade so it cannot starve.
  SueLock lock;
  lock.AcquireShared();  // reader 1 in
  lock.AcquireUpdate();

  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    lock.UpgradeToExclusive();
    upgraded = true;
    lock.DowngradeToUpdate();
    lock.ReleaseUpdate();
  });
  // Give the upgrader time to start waiting.
  std::this_thread::sleep_for(50ms);

  std::atomic<bool> late_reader_in{false};
  std::thread late_reader([&] {
    lock.AcquireShared();
    late_reader_in = true;
    lock.ReleaseShared();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(late_reader_in.load());  // queued behind the upgrade
  EXPECT_FALSE(upgraded.load());        // reader 1 still in

  lock.ReleaseShared();  // reader 1 leaves -> upgrade proceeds -> then the late reader
  EXPECT_TRUE(EventuallyTrue([&] { return upgraded.load() && late_reader_in.load(); }));
  upgrader.join();
  late_reader.join();
}

TEST(SueLockTest, GuardLifecycles) {
  SueLock lock;
  {
    SueLock::SharedGuard shared(lock);
    EXPECT_EQ(lock.snapshot().shared_holders, 1u);
  }
  EXPECT_EQ(lock.snapshot().shared_holders, 0u);
  {
    SueLock::UpdateGuard update(lock);
    EXPECT_TRUE(lock.snapshot().update_held);
    update.Upgrade();
    EXPECT_TRUE(lock.snapshot().exclusive_held);
    update.Downgrade();
    EXPECT_FALSE(lock.snapshot().exclusive_held);
    update.Upgrade();  // destructor must downgrade + release
  }
  SueLock::Snapshot end = lock.snapshot();
  EXPECT_FALSE(end.update_held);
  EXPECT_FALSE(end.exclusive_held);
}

TEST(SueLockTest, StressReadersAndUpdaters) {
  // Invariant check under contention: exclusive never overlaps shared, update never
  // overlaps update.
  SueLock lock;
  std::atomic<int> shared_active{0};
  std::atomic<int> exclusive_active{0};
  std::atomic<int> update_active{0};
  std::atomic<bool> violation{false};
  constexpr int kIterations = 400;

  auto reader_fn = [&] {
    for (int i = 0; i < kIterations; ++i) {
      SueLock::SharedGuard guard(lock);
      shared_active.fetch_add(1);
      if (exclusive_active.load() != 0) {
        violation = true;
      }
      shared_active.fetch_sub(1);
    }
  };
  auto updater_fn = [&] {
    for (int i = 0; i < kIterations; ++i) {
      SueLock::UpdateGuard guard(lock);
      if (update_active.fetch_add(1) != 0) {
        violation = true;
      }
      guard.Upgrade();
      exclusive_active.fetch_add(1);
      if (shared_active.load() != 0) {
        violation = true;
      }
      exclusive_active.fetch_sub(1);
      guard.Downgrade();
      update_active.fetch_sub(1);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(reader_fn);
  }
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back(updater_fn);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace sdb
