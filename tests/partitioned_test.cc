// Tests for PartitionedDatabase (the paper's Section 7 multi-database suggestion).
#include <gtest/gtest.h>

#include "src/core/partitioned.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class PartitionedTest : public ::testing::Test {
 protected:
  PartitionedTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  Result<std::unique_ptr<PartitionedDatabase>> OpenPartitioned(int k) {
    apps_.clear();
    std::vector<PartitionedDatabase::PartitionSpec> specs;
    for (int i = 0; i < k; ++i) {
      apps_.push_back(std::make_unique<TestApp>());
      specs.push_back({apps_.back().get(), "part" + std::to_string(i)});
    }
    DatabaseOptions base;
    base.vfs = &env_->fs();
    base.clock = &env_->clock();
    return PartitionedDatabase::Open(std::move(specs), base);
  }

  std::unique_ptr<SimEnv> env_;
  std::vector<std::unique_ptr<TestApp>> apps_;
};

TEST_F(PartitionedTest, RoutesUpdatesToPartitions) {
  auto db = *OpenPartitioned(3);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "0")).ok());
  ASSERT_TRUE(db->Update(2, apps_[2]->PreparePut("c", "2")).ok());
  EXPECT_EQ(apps_[0]->state["a"], "0");
  EXPECT_EQ(apps_[2]->state["c"], "2");
  EXPECT_TRUE(apps_[1]->state.empty());
}

TEST_F(PartitionedTest, OutOfRangePartitionRejected) {
  auto db = *OpenPartitioned(2);
  EXPECT_TRUE(db->Update(5, apps_[0]->PreparePut("x", "y")).Is(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(db->Enquire(9, [] { return OkStatus(); }).Is(ErrorCode::kInvalidArgument));
}

TEST_F(PartitionedTest, CheckpointAllAdvancesEveryPartition) {
  auto db = *OpenPartitioned(2);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());
  ASSERT_TRUE(db->CheckpointAll().ok());
  EXPECT_EQ(db->partition(0).current_version(), 2u);
  EXPECT_EQ(db->partition(1).current_version(), 2u);
  EXPECT_EQ(db->partition(0).log_bytes(), 0u);
}

TEST_F(PartitionedTest, RecoveryIsPerPartition) {
  {
    auto db = *OpenPartitioned(2);
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("p0", "x")).ok());
    ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("p1", "y")).ok());
  }
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  auto db = *OpenPartitioned(2);
  EXPECT_EQ(apps_[0]->state["p0"], "x");
  EXPECT_EQ(apps_[1]->state["p1"], "y");
  (void)db;
}

TEST_F(PartitionedTest, CheckpointingOnePartitionDoesNotStallOthers) {
  auto db = *OpenPartitioned(2);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("k", "v")).ok());
  // While partition 0 checkpoints, partition 1 accepts updates. (Single-threaded
  // verification: checkpoint then update still works because locks are per-partition;
  // the concurrency benefit is bench E10's subject.)
  ASSERT_TRUE(db->partition(0).Checkpoint().ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("during", "ok")).ok());
  EXPECT_EQ(apps_[1]->state["during"], "ok");
}

TEST_F(PartitionedTest, AggregateStatsSumPartitions) {
  auto db = *OpenPartitioned(3);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());
  ASSERT_TRUE(db->Enquire(2, [] { return OkStatus(); }).ok());
  auto stats = db->aggregate_stats();
  EXPECT_EQ(stats.updates, 2u);
  EXPECT_EQ(stats.enquiries, 1u);
  // Serial partitions on private logs: exactly one physical fsync per update.
  EXPECT_EQ(stats.fsyncs, 2u);
  EXPECT_DOUBLE_EQ(stats.fsyncs_per_update(), 1.0);
}

TEST_F(PartitionedTest, EmptySpecRejected) {
  DatabaseOptions base;
  base.vfs = &env_->fs();
  EXPECT_TRUE(PartitionedDatabase::Open({}, base).status().Is(ErrorCode::kInvalidArgument));
}

}  // namespace
}  // namespace sdb
