// Unit tests for src/common: Status/Result, byte coding, CRC, RNG, clocks.
#include <gtest/gtest.h>

#include <limits>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/cost_model.h"
#include "src/common/crc.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace sdb {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.Is(ErrorCode::kNotFound));
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, WithContextPrepends) {
  Status status = IoError("disk failed").WithContext("writing log");
  EXPECT_TRUE(status.Is(ErrorCode::kIoError));
  EXPECT_EQ(status.message(), "writing log: disk failed");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status status = OkStatus().WithContext("anything");
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kUnimplemented); ++code) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(code)), "UNKNOWN");
  }
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return CorruptionError("bad"); };
  auto wrapper = [&]() -> Status {
    SDB_RETURN_IF_ERROR(fails());
    return InternalError("unreachable");
  };
  EXPECT_TRUE(wrapper().Is(ErrorCode::kCorruption));
}

// --- Result ---

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool ok) -> Result<int> {
    if (ok) {
      return 5;
    }
    return AbortedError("no");
  };
  auto consumer = [&](bool ok) -> Result<int> {
    SDB_ASSIGN_OR_RETURN(int v, producer(ok));
    return v * 2;
  };
  EXPECT_EQ(*consumer(true), 10);
  EXPECT_TRUE(consumer(false).status().Is(ErrorCode::kAborted));
}

// --- ByteWriter / ByteReader ---

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.PutU8(0xAB);
  writer.PutU16(0x1234);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutI64(-42);
  writer.PutF64(3.25);

  ByteReader reader(AsSpan(writer.buffer()));
  EXPECT_EQ(*reader.ReadU8(), 0xAB);
  EXPECT_EQ(*reader.ReadU16(), 0x1234);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*reader.ReadI64(), -42);
  EXPECT_EQ(*reader.ReadF64(), 3.25);
  EXPECT_TRUE(reader.AtEnd());
}

class VarintRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTripTest, RoundTrips) {
  ByteWriter writer;
  writer.PutVarint(GetParam());
  ByteReader reader(AsSpan(writer.buffer()));
  EXPECT_EQ(*reader.ReadVarint(), GetParam());
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTripTest,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull,
                                           16384ull, 1ull << 32, (1ull << 56) - 1,
                                           std::numeric_limits<std::uint64_t>::max()));

class SignedVarintRoundTripTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SignedVarintRoundTripTest, RoundTrips) {
  ByteWriter writer;
  writer.PutVarintSigned(GetParam());
  ByteReader reader(AsSpan(writer.buffer()));
  EXPECT_EQ(*reader.ReadVarintSigned(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SignedVarintRoundTripTest,
                         ::testing::Values(std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                                           std::int64_t{-64}, std::int64_t{64},
                                           std::numeric_limits<std::int64_t>::min(),
                                           std::numeric_limits<std::int64_t>::max()));

TEST(BytesTest, SmallVarintsAreOneByte) {
  ByteWriter writer;
  writer.PutVarint(127);
  EXPECT_EQ(writer.size(), 1u);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  ByteWriter writer;
  writer.PutLengthPrefixed(std::string_view("hello"));
  writer.PutLengthPrefixed(std::string_view(""));
  ByteReader reader(AsSpan(writer.buffer()));
  EXPECT_EQ(*reader.ReadLengthPrefixedString(), "hello");
  EXPECT_EQ(*reader.ReadLengthPrefixedString(), "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, ReadPastEndFails) {
  Bytes data{1, 2, 3};
  ByteReader reader(AsSpan(data));
  EXPECT_TRUE(reader.ReadU64().status().Is(ErrorCode::kCorruption));
}

TEST(BytesTest, TruncatedVarintFails) {
  Bytes data{0x80, 0x80};  // continuation bits with no terminator
  ByteReader reader(AsSpan(data));
  EXPECT_TRUE(reader.ReadVarint().status().Is(ErrorCode::kCorruption));
}

TEST(BytesTest, OverlongVarintFails) {
  Bytes data(11, 0x80);
  ByteReader reader(AsSpan(data));
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(BytesTest, LengthPrefixBeyondBufferFails) {
  ByteWriter writer;
  writer.PutVarint(1000);  // promises 1000 bytes
  writer.PutBytes(std::string_view("short"));
  ByteReader reader(AsSpan(writer.buffer()));
  EXPECT_TRUE(reader.ReadLengthPrefixed().status().Is(ErrorCode::kCorruption));
}

TEST(BytesTest, OverwriteU32Backpatches) {
  ByteWriter writer;
  writer.PutU32(0);
  writer.PutBytes(std::string_view("xyz"));
  writer.OverwriteU32(0, 0xCAFEBABE);
  ByteReader reader(AsSpan(writer.buffer()));
  EXPECT_EQ(*reader.ReadU32(), 0xCAFEBABEu);
}

TEST(BytesTest, HexDumpTruncates) {
  Bytes data(100, 0xAB);
  std::string dump = HexDump(AsSpan(data), 4);
  EXPECT_EQ(dump, "abababab...");
}

// --- CRC ---

TEST(CrcTest, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (the canonical check value).
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
}

TEST(CrcTest, EmptyIsZero) { EXPECT_EQ(Crc32c(std::string_view("")), 0u); }

TEST(CrcTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c(std::string_view("hello")), Crc32c(std::string_view("hellp")));
}

TEST(CrcTest, MaskRoundTrips) {
  for (std::uint32_t crc : {0u, 1u, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

TEST(CrcTest, Crc64KnownProperty) {
  // CRC64 of "123456789" under ECMA-182 (reflected) is 0x995DC9BBDF1939FA.
  EXPECT_EQ(Crc64(std::string_view("123456789")), 0x995DC9BBDF1939FAull);
}

TEST(CrcTest, SingleBitFlipChangesCrc) {
  Bytes data(64, 0x5A);
  std::uint32_t original = Crc32c(AsSpan(data));
  for (std::size_t bit = 0; bit < 8; ++bit) {
    Bytes flipped = data;
    flipped[17] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(Crc32c(AsSpan(flipped)), original);
  }
}

// --- RNG ---

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextStringHasRequestedLength) {
  Rng rng(5);
  EXPECT_EQ(rng.NextString(12).size(), 12u);
  EXPECT_EQ(rng.NextString(0).size(), 0u);
}

// --- Clocks & CostModel ---

TEST(ClockTest, SimClockAdvancesOnlyWhenCharged) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Charge(1500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.Charge(500);
  EXPECT_EQ(clock.NowMicros(), 2000);
}

TEST(ClockTest, WallClockMonotonic) {
  WallClock clock;
  Micros a = clock.NowMicros();
  Micros b = clock.NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, StopwatchMeasuresSimTime) {
  SimClock clock;
  Stopwatch watch(clock);
  clock.Charge(777);
  EXPECT_EQ(watch.ElapsedMicros(), 777);
  watch.Reset();
  EXPECT_EQ(watch.ElapsedMicros(), 0);
}

TEST(CostModelTest, ChargesPickleRates) {
  SimClock clock;
  CostModel model = CostModel::MicroVax(&clock);
  model.ChargePickleWrite(1000);
  // 52 us/byte * 1000 bytes = 52 ms
  EXPECT_EQ(clock.NowMicros(), 52'000);
}

TEST(CostModelTest, NullClockChargesNothing) {
  CostModel model;
  model.ChargePickleWrite(1'000'000);  // must not crash
  model.ChargeExplore(10);
}

TEST(CostModelTest, MicroVaxEnquiryCostMatchesPaper) {
  // The paper: a typical simple enquiry takes ~5 ms of structure exploration.
  SimClock clock;
  CostModel model = CostModel::MicroVax(&clock);
  model.ChargeExplore(3);  // a three-component path
  EXPECT_NEAR(static_cast<double>(clock.NowMicros()), 5000.0, 1000.0);
}

}  // namespace
}  // namespace sdb
