// Unit tests for the typedheap: type registry, kind-checked field access, mark-sweep
// collection, heap-graph pickling.
#include <gtest/gtest.h>

#include "src/typedheap/heap.h"
#include "src/typedheap/heap_pickle.h"
#include "src/typedheap/type_desc.h"

namespace sdb::th {
namespace {

class TypedHeapTest : public ::testing::Test {
 protected:
  TypedHeapTest() {
    node_type_ = registry_
                     .Register("test.node", {{"name", FieldKind::kString},
                                             {"weight", FieldKind::kInt},
                                             {"score", FieldKind::kReal},
                                             {"next", FieldKind::kRef},
                                             {"items", FieldKind::kRefList},
                                             {"table", FieldKind::kStringRefMap}})
                     .value();
  }

  th::Object* NewNode(std::string name) {
    th::Object* node = heap_.Allocate(node_type_);
    EXPECT_TRUE(node->SetString(0, std::move(name)).ok());
    return node;
  }

  TypeRegistry registry_;
  const TypeDesc* node_type_;
  Heap heap_;
};

// --- registry ---

TEST_F(TypedHeapTest, RegistryFindsRegisteredType) {
  auto found = registry_.Find("test.node");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, node_type_);
}

TEST_F(TypedHeapTest, RegistryRejectsDuplicates) {
  EXPECT_TRUE(registry_.Register("test.node", {}).status().Is(ErrorCode::kAlreadyExists));
}

TEST_F(TypedHeapTest, RegistryMissReturnsNotFound) {
  EXPECT_TRUE(registry_.Find("nope").status().Is(ErrorCode::kNotFound));
}

TEST_F(TypedHeapTest, FieldIndexLookup) {
  EXPECT_EQ(*node_type_->FieldIndex("weight"), 1u);
  EXPECT_TRUE(node_type_->FieldIndex("missing").status().Is(ErrorCode::kNotFound));
}

// --- field access ---

TEST_F(TypedHeapTest, FreshObjectHasZeroedFields) {
  th::Object* node = heap_.Allocate(node_type_);
  EXPECT_EQ(**node->GetString(0), "");
  EXPECT_EQ(*node->GetInt(1), 0);
  EXPECT_EQ(*node->GetReal(2), 0.0);
  EXPECT_EQ(*node->GetRef(3), nullptr);
  EXPECT_EQ(*node->ListSize(4), 0u);
  EXPECT_EQ(*node->MapSize(5), 0u);
}

TEST_F(TypedHeapTest, ScalarFieldRoundTrip) {
  th::Object* node = NewNode("n");
  ASSERT_TRUE(node->SetInt(1, -55).ok());
  ASSERT_TRUE(node->SetReal(2, 1.5).ok());
  EXPECT_EQ(*node->GetInt(1), -55);
  EXPECT_EQ(*node->GetReal(2), 1.5);
}

TEST_F(TypedHeapTest, WrongKindAccessIsError) {
  th::Object* node = NewNode("n");
  EXPECT_TRUE(node->GetInt(0).status().Is(ErrorCode::kInvalidArgument));   // string field
  EXPECT_TRUE(node->SetString(1, "x").Is(ErrorCode::kInvalidArgument));    // int field
  EXPECT_TRUE(node->MapGet(3, "k").status().Is(ErrorCode::kInvalidArgument));  // ref field
}

TEST_F(TypedHeapTest, OutOfRangeFieldIsError) {
  th::Object* node = NewNode("n");
  EXPECT_TRUE(node->GetInt(99).status().Is(ErrorCode::kInvalidArgument));
}

TEST_F(TypedHeapTest, RefListOperations) {
  th::Object* node = NewNode("list");
  th::Object* a = NewNode("a");
  th::Object* b = NewNode("b");
  ASSERT_TRUE(node->ListAppend(4, a).ok());
  ASSERT_TRUE(node->ListAppend(4, b).ok());
  EXPECT_EQ(*node->ListSize(4), 2u);
  EXPECT_EQ(*node->ListGet(4, 0), a);
  ASSERT_TRUE(node->ListSet(4, 0, b).ok());
  EXPECT_EQ(*node->ListGet(4, 0), b);
  EXPECT_TRUE(node->ListGet(4, 5).status().Is(ErrorCode::kInvalidArgument));
  ASSERT_TRUE(node->ListClear(4).ok());
  EXPECT_EQ(*node->ListSize(4), 0u);
}

TEST_F(TypedHeapTest, MapOperations) {
  th::Object* node = NewNode("map");
  th::Object* child = NewNode("child");
  ASSERT_TRUE(node->MapSet(5, "key", child).ok());
  EXPECT_EQ(*node->MapGet(5, "key"), child);
  EXPECT_TRUE(node->MapGet(5, "other").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(*node->MapSize(5), 1u);
  ASSERT_TRUE(node->MapErase(5, "key").ok());
  EXPECT_TRUE(node->MapErase(5, "key").Is(ErrorCode::kNotFound));
}

// --- garbage collection ---

TEST_F(TypedHeapTest, UnreachableObjectsCollected) {
  th::Object* root = NewNode("root");
  heap_.AddRoot(root);
  NewNode("garbage1");
  NewNode("garbage2");
  EXPECT_EQ(heap_.live_objects(), 3u);
  EXPECT_EQ(heap_.Collect(), 2u);
  EXPECT_EQ(heap_.live_objects(), 1u);
}

TEST_F(TypedHeapTest, ReachableThroughEveryFieldKindSurvives) {
  th::Object* root = NewNode("root");
  heap_.AddRoot(root);
  th::Object* via_ref = NewNode("via_ref");
  th::Object* via_list = NewNode("via_list");
  th::Object* via_map = NewNode("via_map");
  ASSERT_TRUE(root->SetRef(3, via_ref).ok());
  ASSERT_TRUE(root->ListAppend(4, via_list).ok());
  ASSERT_TRUE(root->MapSet(5, "m", via_map).ok());
  EXPECT_EQ(heap_.Collect(), 0u);
  EXPECT_EQ(heap_.live_objects(), 4u);
}

TEST_F(TypedHeapTest, CyclesAreCollectedWhenUnreachable) {
  th::Object* a = NewNode("a");
  th::Object* b = NewNode("b");
  ASSERT_TRUE(a->SetRef(3, b).ok());
  ASSERT_TRUE(b->SetRef(3, a).ok());
  EXPECT_EQ(heap_.Collect(), 2u);  // cycle with no root dies
}

TEST_F(TypedHeapTest, RemovingRootFreesSubtree) {
  th::Object* root = NewNode("root");
  th::Object* child = NewNode("child");
  ASSERT_TRUE(root->SetRef(3, child).ok());
  heap_.AddRoot(root);
  EXPECT_EQ(heap_.Collect(), 0u);
  heap_.RemoveRoot(root);
  EXPECT_EQ(heap_.Collect(), 2u);
}

TEST_F(TypedHeapTest, DeepChainMarksWithoutStackOverflow) {
  th::Object* head = NewNode("head");
  heap_.AddRoot(head);
  th::Object* current = head;
  for (int i = 0; i < 100'000; ++i) {
    th::Object* next = heap_.Allocate(node_type_);
    ASSERT_TRUE(current->SetRef(3, next).ok());
    current = next;
  }
  EXPECT_EQ(heap_.Collect(), 0u);
  EXPECT_EQ(heap_.live_objects(), 100'001u);
}

TEST_F(TypedHeapTest, GcStatsAccumulate) {
  NewNode("garbage");
  heap_.Collect();
  heap_.Collect();
  EXPECT_EQ(heap_.gc_stats().collections, 2u);
  EXPECT_EQ(heap_.gc_stats().objects_freed, 1u);
}

// --- heap-graph pickling ---

TEST_F(TypedHeapTest, EmptyRootPickles) {
  Bytes data = *PickleHeapGraph(nullptr);
  Heap other;
  auto back = UnpickleHeapGraph(other, registry_, AsSpan(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nullptr);
}

TEST_F(TypedHeapTest, SingleObjectRoundTrips) {
  th::Object* node = NewNode("solo");
  ASSERT_TRUE(node->SetInt(1, 42).ok());
  ASSERT_TRUE(node->SetReal(2, -2.5).ok());
  Bytes data = *PickleHeapGraph(node);

  Heap other;
  th::Object* back = *UnpickleHeapGraph(other, registry_, AsSpan(data));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(**back->GetString(0), "solo");
  EXPECT_EQ(*back->GetInt(1), 42);
  EXPECT_EQ(*back->GetReal(2), -2.5);
}

TEST_F(TypedHeapTest, TreeWithMapsAndListsRoundTrips) {
  th::Object* root = NewNode("root");
  th::Object* left = NewNode("left");
  th::Object* right = NewNode("right");
  ASSERT_TRUE(root->MapSet(5, "l", left).ok());
  ASSERT_TRUE(root->MapSet(5, "r", right).ok());
  ASSERT_TRUE(root->ListAppend(4, left).ok());
  ASSERT_TRUE(left->SetInt(1, 7).ok());

  Bytes data = *PickleHeapGraph(root);
  Heap other;
  th::Object* back = *UnpickleHeapGraph(other, registry_, AsSpan(data));
  EXPECT_EQ(other.live_objects(), 3u);
  th::Object* back_left = *back->MapGet(5, "l");
  EXPECT_EQ(**back_left->GetString(0), "left");
  EXPECT_EQ(*back_left->GetInt(1), 7);
  // Shared structure preserved: the list element is the same object as map["l"].
  EXPECT_EQ(*back->ListGet(4, 0), back_left);
}

TEST_F(TypedHeapTest, CyclicGraphRoundTrips) {
  th::Object* a = NewNode("a");
  th::Object* b = NewNode("b");
  ASSERT_TRUE(a->SetRef(3, b).ok());
  ASSERT_TRUE(b->SetRef(3, a).ok());
  heap_.AddRoot(a);

  Bytes data = *PickleHeapGraph(a);
  Heap other;
  th::Object* back = *UnpickleHeapGraph(other, registry_, AsSpan(data));
  th::Object* back_b = *back->GetRef(3);
  EXPECT_EQ(*back_b->GetRef(3), back);
}

TEST_F(TypedHeapTest, DeepGraphPicklesWithoutRecursion) {
  th::Object* head = NewNode("head");
  heap_.AddRoot(head);
  th::Object* current = head;
  for (int i = 0; i < 50'000; ++i) {
    th::Object* next = heap_.Allocate(node_type_);
    ASSERT_TRUE(current->SetRef(3, next).ok());
    current = next;
  }
  Bytes data = *PickleHeapGraph(head);
  Heap other;
  auto back = UnpickleHeapGraph(other, registry_, AsSpan(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(other.live_objects(), 50'001u);
}

TEST_F(TypedHeapTest, UnregisteredTypeRejectedOnUnpickle) {
  th::Object* node = NewNode("x");
  Bytes data = *PickleHeapGraph(node);
  TypeRegistry empty_registry;
  Heap other;
  auto back = UnpickleHeapGraph(other, empty_registry, AsSpan(data));
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().Is(ErrorCode::kCorruption));
}

TEST_F(TypedHeapTest, ChangedFieldShapeRejectedOnUnpickle) {
  th::Object* node = NewNode("x");
  Bytes data = *PickleHeapGraph(node);
  TypeRegistry different;
  ASSERT_TRUE(different.Register("test.node", {{"name", FieldKind::kString}}).ok());
  Heap other;
  auto back = UnpickleHeapGraph(other, different, AsSpan(data));
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().Is(ErrorCode::kCorruption));
}

TEST_F(TypedHeapTest, CorruptedGraphBytesRejected) {
  th::Object* node = NewNode("x");
  Bytes data = *PickleHeapGraph(node);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    Bytes corrupted = data;
    corrupted[i] ^= 0x10;
    Heap other;
    EXPECT_FALSE(UnpickleHeapGraph(other, registry_, AsSpan(corrupted)).ok())
        << "flip at " << i;
  }
}

TEST_F(TypedHeapTest, ApproximateBytesGrowsWithContent) {
  th::Object* node = NewNode("");
  std::size_t before = node->ApproximateBytes();
  ASSERT_TRUE(node->SetString(0, std::string(1000, 'x')).ok());
  EXPECT_GT(node->ApproximateBytes(), before + 900);
}

}  // namespace
}  // namespace sdb::th
