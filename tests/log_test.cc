// Tests for the redo-log stack: entry framing, partial-tail detection at every
// truncation point, damaged-entry skipping, writer padding, replay over torn pages,
// and the audit trail.
#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/core/log_format.h"
#include "src/core/log_reader.h"
#include "src/core/log_writer.h"
#include "src/storage/sim_env.h"

namespace sdb {
namespace {

Bytes Payload(std::string_view text) { return ToBytes(text); }

// --- framing ---

TEST(LogFormatTest, EncodeDecodeRoundTrip) {
  ByteWriter out;
  EncodeLogEntry(AsSpan(Payload("hello")), out);
  LogDecodeResult decoded = DecodeLogEntry(AsSpan(out.buffer()), 0);
  ASSERT_EQ(decoded.outcome, LogDecodeOutcome::kEntry);
  EXPECT_EQ(AsStringView(decoded.payload), "hello");
  EXPECT_EQ(decoded.next_offset, out.size());
}

TEST(LogFormatTest, EmptyPayloadIsValid) {
  ByteWriter out;
  EncodeLogEntry(ByteSpan{}, out);
  LogDecodeResult decoded = DecodeLogEntry(AsSpan(out.buffer()), 0);
  EXPECT_EQ(decoded.outcome, LogDecodeOutcome::kEntry);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(LogFormatTest, EncodedSizeMatches) {
  for (std::size_t n : {0u, 1u, 127u, 128u, 5000u}) {
    ByteWriter out;
    EncodeLogEntry(AsSpan(Bytes(n, 0xAA)), out);
    EXPECT_EQ(out.size(), EncodedLogEntrySize(n));
  }
}

TEST(LogFormatTest, CleanEndAtExactBoundary) {
  ByteWriter out;
  EncodeLogEntry(AsSpan(Payload("x")), out);
  LogDecodeResult first = DecodeLogEntry(AsSpan(out.buffer()), 0);
  LogDecodeResult end = DecodeLogEntry(AsSpan(out.buffer()), first.next_offset);
  EXPECT_EQ(end.outcome, LogDecodeOutcome::kCleanEnd);
}

// Every truncation of an entry must classify as a partial tail, never as a valid entry
// — the paper's "partially written log entry ... is discarded".
class TruncationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationTest, TruncatedEntryIsPartialTail) {
  ByteWriter out;
  EncodeLogEntry(AsSpan(Payload("a payload long enough to span several bytes")), out);
  std::size_t cut = GetParam();
  if (cut >= out.size()) {
    GTEST_SKIP() << "cut beyond entry";
  }
  ByteSpan truncated = AsSpan(out.buffer()).subspan(0, cut);
  LogDecodeResult decoded = DecodeLogEntry(truncated, 0);
  if (cut == 0) {
    EXPECT_EQ(decoded.outcome, LogDecodeOutcome::kCleanEnd);
  } else {
    EXPECT_TRUE(decoded.outcome == LogDecodeOutcome::kPartialTail ||
                decoded.outcome == LogDecodeOutcome::kCorrupt);
    EXPECT_NE(decoded.outcome, LogDecodeOutcome::kEntry);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrefixes, TruncationTest,
                         ::testing::Range(std::size_t{0}, std::size_t{51}));

TEST(LogFormatTest, BitFlipsAreCorrupt) {
  ByteWriter out;
  EncodeLogEntry(AsSpan(Payload("bit flip target")), out);
  Bytes data = out.buffer();
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes corrupted = data;
    corrupted[i] ^= 0x01;
    LogDecodeResult decoded = DecodeLogEntry(AsSpan(corrupted), 0);
    EXPECT_NE(decoded.outcome, LogDecodeOutcome::kEntry) << "flip at byte " << i;
  }
}

TEST(LogFormatTest, ResyncFindsNextEntry) {
  ByteWriter out;
  out.PutBytes(Bytes(13, 0xEE));  // garbage
  std::size_t entry_start = out.size();
  EncodeLogEntry(AsSpan(Payload("found me")), out);
  std::size_t resync = ResyncLog(AsSpan(out.buffer()), 0);
  EXPECT_EQ(resync, entry_start);
}

TEST(LogFormatTest, ResyncReturnsEndWhenNothingFollows) {
  Bytes garbage(64, 0xEE);
  EXPECT_EQ(ResyncLog(AsSpan(garbage), 0), garbage.size());
}

// --- writer + reader over the simulated file system ---

class LogIoTest : public ::testing::Test {
 protected:
  LogIoTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  std::unique_ptr<LogWriter> NewWriter(std::string_view path) {
    auto file = *env_->fs().Open(path, OpenMode::kCreate);
    return std::make_unique<LogWriter>(std::move(file), 0);
  }

  std::vector<std::string> ReplayAll(std::string_view path, LogReplayOptions options = {},
                                     LogReplayStats* stats_out = nullptr) {
    std::vector<std::string> payloads;
    auto stats = ReplayLogFile(env_->fs(), path, options, [&payloads](ByteSpan payload) {
      payloads.emplace_back(AsStringView(payload));
      return OkStatus();
    });
    EXPECT_TRUE(stats.ok()) << stats.status();
    if (stats.ok() && stats_out != nullptr) {
      *stats_out = *stats;
    }
    return payloads;
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(LogIoTest, AppendCommitReplay) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("one"))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("two"))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("three"))).ok());
  EXPECT_EQ(writer->stats().entries_appended, 3u);
  EXPECT_EQ(writer->stats().commits, 3u);

  LogReplayStats stats;
  std::vector<std::string> payloads = ReplayAll("log", {}, &stats);
  EXPECT_EQ(payloads, (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_EQ(stats.entries_replayed, 3u);
  EXPECT_FALSE(stats.partial_tail_discarded);
}

TEST_F(LogIoTest, CommitsArePageAligned) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("pad me"))).ok());
  EXPECT_EQ(writer->size() % 512, 0u);
  EXPECT_GT(writer->stats().padding_bytes, 0u);
}

TEST_F(LogIoTest, GroupCommitSharesOneSync) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->Append(AsSpan(Payload("a"))).ok());
  ASSERT_TRUE(writer->Append(AsSpan(Payload("b"))).ok());
  ASSERT_TRUE(writer->Append(AsSpan(Payload("c"))).ok());
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(writer->stats().commits, 1u);
  EXPECT_EQ(ReplayAll("log").size(), 3u);
}

TEST_F(LogIoTest, UncommittedTailDiscardedAfterCrash) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("committed"))).ok());
  ASSERT_TRUE(env_->fs().SyncDir("").ok());
  ASSERT_TRUE(writer->Append(AsSpan(Payload("never committed"))).ok());
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());

  LogReplayStats stats;
  std::vector<std::string> payloads = ReplayAll("log", {}, &stats);
  EXPECT_EQ(payloads, (std::vector<std::string>{"committed"}));
}

TEST_F(LogIoTest, TornCommitDetectedAsPartialTail) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("safe"))).ok());
  ASSERT_TRUE(env_->fs().SyncDir("").ok());

  // Tear the page write of the second commit.
  ASSERT_TRUE(writer->Append(AsSpan(Payload("torn entry"))).ok());
  CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
  env_->disk().SetFaultInjector(plan.AsInjector());
  EXPECT_FALSE(writer->Commit().ok());
  EXPECT_TRUE(plan.fired());

  env_->disk().SetFaultInjector(nullptr);
  ASSERT_TRUE(env_->fs().Recover().ok());
  LogReplayStats stats;
  std::vector<std::string> payloads = ReplayAll("log", {}, &stats);
  EXPECT_EQ(payloads, (std::vector<std::string>{"safe"}));
}

TEST_F(LogIoTest, LargeEntrySpanningManyPages) {
  auto writer = NewWriter("log");
  std::string big(5000, 'B');
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload(big))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("after"))).ok());
  std::vector<std::string> payloads = ReplayAll("log");
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0].size(), 5000u);
  EXPECT_EQ(payloads[1], "after");
}

TEST_F(LogIoTest, DamagedMiddleEntrySkippedInHardErrorMode) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("first"))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("second"))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("third"))).ok());
  ASSERT_TRUE(env_->fs().SyncDir("").ok());

  // Decay the page holding the second entry (entries are page-aligned: entry i starts
  // at page i).
  ASSERT_TRUE(env_->fs().InjectBadFilePage("log", 1).ok());

  LogReplayOptions options;
  options.skip_damaged_entries = true;
  LogReplayStats stats;
  std::vector<std::string> payloads = ReplayAll("log", options, &stats);
  EXPECT_EQ(payloads, (std::vector<std::string>{"first", "third"}));
  EXPECT_EQ(stats.entries_skipped, 1u);
  EXPECT_EQ(stats.unreadable_pages, 1u);
}

TEST_F(LogIoTest, DamagedMiddleEntryFailsStrictReplay) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("first"))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("second"))).ok());
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("third"))).ok());
  ASSERT_TRUE(env_->fs().InjectBadFilePage("log", 1).ok());

  auto result = ReplayLogFile(env_->fs(), "log", {}, [](ByteSpan) { return OkStatus(); });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().Is(ErrorCode::kCorruption));
}

TEST_F(LogIoTest, ApplyErrorAbortsReplay) {
  auto writer = NewWriter("log");
  ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload("x"))).ok());
  auto result = ReplayLogFile(env_->fs(), "log", {},
                              [](ByteSpan) { return InternalError("apply failed"); });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().Is(ErrorCode::kInternal));
}

TEST_F(LogIoTest, EmptyLogReplaysCleanly) {
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "log", ByteSpan{}).ok());
  LogReplayStats stats;
  EXPECT_TRUE(ReplayAll("log", {}, &stats).empty());
  EXPECT_EQ(stats.entries_replayed, 0u);
}

TEST_F(LogIoTest, AuditTrailListsAllEntries) {
  auto writer = NewWriter("log");
  for (std::string_view text : {"alpha", "beta", "gamma"}) {
    ASSERT_TRUE(writer->AppendAndCommit(AsSpan(Payload(text))).ok());
  }
  auto trail = ReadAuditTrail(env_->fs(), "log");
  ASSERT_TRUE(trail.ok());
  ASSERT_EQ(trail->size(), 3u);
  EXPECT_EQ((*trail)[0].index, 0u);
  EXPECT_EQ(AsStringView(AsSpan((*trail)[2].record)), "gamma");
}

class ManyEntriesTest : public ::testing::TestWithParam<int> {};

TEST_P(ManyEntriesTest, ReplayCountMatchesWrites) {
  SimEnvOptions options;
  options.microvax_cost_model = false;
  SimEnv env(options);
  auto file = *env.fs().Open("log", OpenMode::kCreate);
  LogWriter writer(std::move(file), 0);
  int count = GetParam();
  for (int i = 0; i < count; ++i) {
    std::string payload = "entry-" + std::to_string(i);
    ASSERT_TRUE(writer.AppendAndCommit(AsSpan(Payload(payload))).ok());
  }
  int replayed = 0;
  auto stats = ReplayLogFile(env.fs(), "log", {}, [&replayed](ByteSpan) {
    ++replayed;
    return OkStatus();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(replayed, count);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ManyEntriesTest, ::testing::Values(0, 1, 2, 10, 100, 500));

}  // namespace
}  // namespace sdb
