// Tests for the extended pickle traits (tuple, variant, array, deque) and fuzzing of
// the decode paths: arbitrary bytes must produce errors, never crashes or hangs.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>
#include <variant>

#include "src/common/rng.h"
#include "src/core/log_format.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb {
namespace {

template <typename T>
T RoundTrip(const T& value) {
  Bytes data = PickleWrite(value);
  Result<T> back = PickleRead<T>(AsSpan(data));
  EXPECT_TRUE(back.ok()) << back.status();
  return back.ok() ? *back : T{};
}

TEST(PickleExtendedTest, Tuple) {
  std::tuple<int, std::string, double> value{7, "seven", 7.5};
  EXPECT_EQ(RoundTrip(value), value);
  std::tuple<> empty;
  EXPECT_EQ(RoundTrip(empty), empty);
}

TEST(PickleExtendedTest, Array) {
  std::array<std::uint32_t, 4> value{1, 2, 3, 4};
  EXPECT_EQ(RoundTrip(value), value);
  std::array<std::string, 2> strings{"a", "b"};
  EXPECT_EQ(RoundTrip(strings), strings);
}

TEST(PickleExtendedTest, Deque) {
  std::deque<std::string> value{"front", "middle", "back"};
  EXPECT_EQ(RoundTrip(value), value);
  EXPECT_EQ(RoundTrip(std::deque<int>{}), std::deque<int>{});
}

TEST(PickleExtendedTest, VariantAlternatives) {
  using V = std::variant<std::int32_t, std::string, std::vector<double>>;
  V as_int = 42;
  V as_string = std::string("hello");
  V as_vector = std::vector<double>{1.0, 2.0};
  EXPECT_EQ(RoundTrip(as_int), as_int);
  EXPECT_EQ(RoundTrip(as_string), as_string);
  EXPECT_EQ(RoundTrip(as_vector), as_vector);
}

TEST(PickleExtendedTest, VariantBadIndexRejected) {
  using V = std::variant<int, std::string>;
  PickleWriter writer;
  writer.bytes().PutU8(9);  // only indices 0 and 1 exist
  Bytes raw = std::move(writer).TakeRaw();
  PickleReader reader = PickleReader::Raw(AsSpan(raw));
  V out;
  EXPECT_TRUE(reader.Read(out).Is(ErrorCode::kCorruption));
}

TEST(PickleExtendedTest, NestedComposite) {
  std::map<std::string, std::variant<int, std::vector<std::string>>> value{
      {"number", 5}, {"list", std::vector<std::string>{"x", "y"}}};
  EXPECT_EQ(RoundTrip(value), value);
}

// --- fuzzing: random bytes into every decode surface ---

TEST(PickleFuzzTest, RandomBytesNeverCrashEnvelopeDecode) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.NextBelow(200));
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.NextU64());
    }
    Result<std::vector<std::string>> result =
        PickleRead<std::vector<std::string>>(AsSpan(junk));
    EXPECT_FALSE(result.ok());  // junk must never validate (CRC makes this ~certain)
  }
}

TEST(PickleFuzzTest, MutatedValidEnvelopesNeverCrash) {
  std::map<std::string, std::vector<std::uint64_t>> value{{"k", {1, 2, 3}},
                                                          {"longer-key", {99}}};
  Bytes data = PickleWrite(value);
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = data;
    int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.NextBelow(mutated.size())] ^= static_cast<std::uint8_t>(rng.NextU64() | 1);
    }
    // Any outcome but a crash is fine; a CRC pass with equal value is also possible if
    // the flips cancelled (astronomically unlikely but legal).
    (void)PickleRead<decltype(value)>(AsSpan(mutated));
  }
}

TEST(PickleFuzzTest, RawPayloadFuzzAgainstDeepTypes) {
  using Deep = std::vector<std::map<std::string, std::optional<std::vector<std::string>>>>;
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes junk(rng.NextBelow(100));
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.NextU64());
    }
    PickleReader reader = PickleReader::Raw(AsSpan(junk));
    Deep out;
    (void)reader.Read(out);  // must terminate with a Status, not crash or hang
  }
}

TEST(LogFuzzTest, RandomBytesNeverCrashLogDecode) {
  Rng rng(0xD15C);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.NextBelow(300));
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.NextU64());
    }
    std::size_t offset = 0;
    int steps = 0;
    while (offset < junk.size() && steps++ < 1000) {
      LogDecodeResult decoded = DecodeLogEntry(AsSpan(junk), offset);
      if (decoded.outcome == LogDecodeOutcome::kEntry) {
        ASSERT_GT(decoded.next_offset, offset);  // forward progress
        offset = decoded.next_offset;
        continue;
      }
      std::size_t resync = ResyncLog(AsSpan(junk), offset);
      ASSERT_GT(resync, offset);
      offset = resync;
    }
  }
}

}  // namespace
}  // namespace sdb
