// Corruption fuzzing for the pickle envelope (ISSUE 3 satellite): flip every byte,
// truncate at every length, and feed seeded garbage. PickleRead must always return a
// clean error or the exact original value — never crash, hang, or silently accept a
// different value. This is the paper's "give either correct data or an error"
// assumption, enforced at the serialization layer.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb {
namespace {

struct FuzzRecord {
  std::uint32_t id = 0;
  std::string name;
  std::vector<std::uint64_t> values;
  std::map<std::string, std::string> attrs;
  SDB_PICKLE_FIELDS(FuzzRecord, id, name, values, attrs)

  bool operator==(const FuzzRecord& other) const {
    return id == other.id && name == other.name && values == other.values &&
           attrs == other.attrs;
  }
};

FuzzRecord SampleRecord() {
  FuzzRecord record;
  record.id = 0xC0FFEE;
  record.name = "fuzz target";
  record.values = {1, 2, 3, 0xFFFFFFFFFFFFFFFFull};
  record.attrs = {{"alpha", "a"}, {"beta", "bb"}, {"gamma", ""}};
  return record;
}

TEST(PickleFuzzTest, EveryByteFlipFailsCleanlyOrRoundTrips) {
  const FuzzRecord original = SampleRecord();
  const Bytes envelope = PickleWrite(original);
  ASSERT_GT(envelope.size(), 8u);

  for (std::size_t index = 0; index < envelope.size(); ++index) {
    for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                              std::uint8_t{0xFF}}) {
      Bytes corrupted = envelope;
      corrupted[index] ^= flip;
      Result<FuzzRecord> decoded = PickleRead<FuzzRecord>(AsSpan(corrupted));
      if (decoded.ok()) {
        // A flip the decoder accepts must be semantically invisible — anything else
        // is silent corruption. (With a CRC over the payload none should pass, but
        // the contract we enforce is "never a wrong value".)
        EXPECT_EQ(decoded.value(), original)
            << "byte " << index << " flipped with 0x" << std::hex << int{flip}
            << " silently decoded to a different value";
      }
    }
  }
}

TEST(PickleFuzzTest, EveryTruncationFailsCleanly) {
  const FuzzRecord original = SampleRecord();
  const Bytes envelope = PickleWrite(original);

  for (std::size_t length = 0; length < envelope.size(); ++length) {
    Result<FuzzRecord> decoded =
        PickleRead<FuzzRecord>(ByteSpan(envelope.data(), length));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << length << " bytes decoded";
  }
  // And one byte of trailing garbage must not pass either: the envelope knows its
  // exact length.
  Bytes extended = envelope;
  extended.push_back(0x00);
  EXPECT_FALSE(PickleRead<FuzzRecord>(AsSpan(extended)).ok());
}

TEST(PickleFuzzTest, SeededGarbageNeverCrashesOrSilentlyDecodes) {
  const FuzzRecord original = SampleRecord();
  const Bytes envelope = PickleWrite(original);
  Rng rng(0x9C1E5EED);

  for (int round = 0; round < 2000; ++round) {
    Bytes mutant;
    if (rng.NextBool(0.5)) {
      // Pure garbage of a random size (including sizes near the envelope's).
      mutant.resize(rng.NextBelow(2 * envelope.size() + 1));
      for (auto& byte : mutant) {
        byte = static_cast<std::uint8_t>(rng.NextBelow(256));
      }
    } else {
      // A valid envelope with 1-8 random byte mutations — the adversarial shape,
      // since most of the frame stays plausible.
      mutant = envelope;
      std::uint64_t mutations = 1 + rng.NextBelow(8);
      for (std::uint64_t i = 0; i < mutations && !mutant.empty(); ++i) {
        mutant[rng.NextBelow(mutant.size())] =
            static_cast<std::uint8_t>(rng.NextBelow(256));
      }
    }
    Result<FuzzRecord> decoded = PickleRead<FuzzRecord>(AsSpan(mutant));
    if (decoded.ok()) {
      EXPECT_EQ(decoded.value(), original) << "round " << round;
    }
  }
}

TEST(PickleFuzzTest, RawReaderGarbageFailsCleanly) {
  // The unframed payload reader (no CRC shield) must still bounds-check everything:
  // hostile counts and length prefixes return errors instead of overreading or
  // allocating absurd amounts.
  Rng rng(0xBADBEEF5);
  for (int round = 0; round < 2000; ++round) {
    Bytes garbage(rng.NextBelow(64), 0);
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.NextBelow(256));
    }
    PickleReader reader = PickleReader::Raw(AsSpan(garbage));
    FuzzRecord record;
    (void)reader.Read(record);  // any Status is fine; crashing or hanging is not
  }
}

}  // namespace
}  // namespace sdb
