// Unit tests for SimDisk: page semantics, failure injection, timing model.
#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/storage/sim_disk.h"

namespace sdb {
namespace {

SimDiskOptions SmallDisk(Clock* clock = nullptr) {
  SimDiskOptions options;
  options.page_size = 64;
  options.capacity_pages = 128;
  options.clock = clock;
  return options;
}

TEST(SimDiskTest, WriteReadRoundTrip) {
  SimDisk disk(SmallDisk());
  Bytes data{1, 2, 3, 4};
  ASSERT_TRUE(disk.WritePage(5, AsSpan(data)).ok());
  Bytes out;
  ASSERT_TRUE(disk.ReadPage(5, out).ok());
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_EQ(out[4], 0);  // zero padded
}

TEST(SimDiskTest, UnwrittenPageReadsAsZeroes) {
  SimDisk disk(SmallDisk());
  Bytes out;
  ASSERT_TRUE(disk.ReadPage(7, out).ok());
  EXPECT_EQ(out, Bytes(64, 0));
}

TEST(SimDiskTest, OversizedWriteRejected) {
  SimDisk disk(SmallDisk());
  Bytes data(65, 0xFF);
  EXPECT_TRUE(disk.WritePage(0, AsSpan(data)).Is(ErrorCode::kInvalidArgument));
}

TEST(SimDiskTest, OutOfRangePageRejected) {
  SimDisk disk(SmallDisk());
  Bytes out;
  EXPECT_TRUE(disk.ReadPage(1000, out).Is(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(disk.WritePage(1000, ByteSpan{}).Is(ErrorCode::kInvalidArgument));
}

TEST(SimDiskTest, AllocateAssignsDistinctPages) {
  SimDisk disk(SmallDisk());
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  EXPECT_NE(a, b);
}

TEST(SimDiskTest, FreedPagesAreReused) {
  SimDisk disk(SmallDisk());
  PageId a = *disk.AllocatePage();
  disk.FreePage(a);
  EXPECT_EQ(*disk.AllocatePage(), a);
}

TEST(SimDiskTest, FreedPageContentIsGone) {
  SimDisk disk(SmallDisk());
  PageId a = *disk.AllocatePage();
  Bytes data{9, 9, 9};
  ASSERT_TRUE(disk.WritePage(a, AsSpan(data)).ok());
  disk.FreePage(a);
  Bytes out;
  ASSERT_TRUE(disk.ReadPage(a, out).ok());
  EXPECT_EQ(out, Bytes(64, 0));
}

TEST(SimDiskTest, DiskFillsUp) {
  SimDiskOptions options = SmallDisk();
  options.capacity_pages = 2;
  SimDisk disk(options);
  EXPECT_TRUE(disk.AllocatePage().ok());
  EXPECT_TRUE(disk.AllocatePage().ok());
  EXPECT_TRUE(disk.AllocatePage().status().Is(ErrorCode::kOutOfSpace));
}

TEST(SimDiskTest, TornWriteMakesPageUnreadable) {
  SimDisk disk(SmallDisk());
  Bytes good{1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(disk.WritePage(0, AsSpan(good)).ok());

  CrashPlan plan(disk.next_durable_op_sequence(), FaultAction::kCrashTorn);
  disk.SetFaultInjector(plan.AsInjector());
  Bytes replacement(8, 0xEE);
  EXPECT_TRUE(disk.WritePage(0, AsSpan(replacement)).Is(ErrorCode::kIoError));
  EXPECT_TRUE(plan.fired());
  EXPECT_TRUE(disk.crashed());

  disk.ClearCrash();
  Bytes out;
  // The paper's assumed hardware property: a partially written page reports an error.
  EXPECT_TRUE(disk.ReadPage(0, out).Is(ErrorCode::kUnreadable));

  // Rewriting repairs it.
  disk.SetFaultInjector(nullptr);
  ASSERT_TRUE(disk.WritePage(0, AsSpan(good)).ok());
  EXPECT_TRUE(disk.ReadPage(0, out).ok());
}

TEST(SimDiskTest, CrashBeforeLeavesOldContent) {
  SimDisk disk(SmallDisk());
  Bytes original{42};
  ASSERT_TRUE(disk.WritePage(3, AsSpan(original)).ok());
  CrashPlan plan(disk.next_durable_op_sequence(), FaultAction::kCrashBefore);
  disk.SetFaultInjector(plan.AsInjector());
  Bytes replacement{77};
  EXPECT_FALSE(disk.WritePage(3, AsSpan(replacement)).ok());
  disk.ClearCrash();
  Bytes out;
  ASSERT_TRUE(disk.ReadPage(3, out).ok());
  EXPECT_EQ(out[0], 42);
}

TEST(SimDiskTest, CrashAfterKeepsNewContent) {
  SimDisk disk(SmallDisk());
  CrashPlan plan(disk.next_durable_op_sequence(), FaultAction::kCrashAfter);
  disk.SetFaultInjector(plan.AsInjector());
  Bytes data{11};
  EXPECT_FALSE(disk.WritePage(3, AsSpan(data)).ok());  // reports the crash
  disk.ClearCrash();
  Bytes out;
  ASSERT_TRUE(disk.ReadPage(3, out).ok());
  EXPECT_EQ(out[0], 11);  // but the write itself became durable
}

TEST(SimDiskTest, AllIoFailsWhileCrashed) {
  SimDisk disk(SmallDisk());
  disk.Crash();
  Bytes out;
  EXPECT_TRUE(disk.ReadPage(0, out).Is(ErrorCode::kIoError));
  EXPECT_TRUE(disk.WritePage(0, ByteSpan{}).Is(ErrorCode::kIoError));
  disk.ClearCrash();
  EXPECT_TRUE(disk.ReadPage(0, out).ok());
}

TEST(SimDiskTest, MarkPageUnreadableIsAHardError) {
  SimDisk disk(SmallDisk());
  Bytes data{1};
  ASSERT_TRUE(disk.WritePage(9, AsSpan(data)).ok());
  disk.MarkPageUnreadable(9);
  Bytes out;
  EXPECT_TRUE(disk.ReadPage(9, out).Is(ErrorCode::kUnreadable));
}

TEST(SimDiskTest, DurableOpSequenceCountsWritesAndMetadataSyncs) {
  SimDisk disk(SmallDisk());
  EXPECT_EQ(disk.next_durable_op_sequence(), 1u);
  Bytes data{1};
  ASSERT_TRUE(disk.WritePage(0, AsSpan(data)).ok());
  EXPECT_EQ(disk.next_durable_op_sequence(), 2u);
  EXPECT_EQ(disk.BeginMetadataSync("dir"), FaultAction::kNone);
  EXPECT_EQ(disk.next_durable_op_sequence(), 3u);
}

TEST(SimDiskTest, MetadataSyncCrashInjection) {
  SimDisk disk(SmallDisk());
  CrashPlan plan(1, FaultAction::kCrashAfter);
  disk.SetFaultInjector(plan.AsInjector());
  EXPECT_EQ(disk.BeginMetadataSync("dir"), FaultAction::kCrashAfter);
  EXPECT_TRUE(disk.crashed());
}

TEST(SimDiskTest, StatsCountOperations) {
  SimDisk disk(SmallDisk());
  Bytes data{1};
  ASSERT_TRUE(disk.WritePage(0, AsSpan(data)).ok());
  ASSERT_TRUE(disk.WritePage(1, AsSpan(data)).ok());
  Bytes out;
  ASSERT_TRUE(disk.ReadPage(0, out).ok());
  SimDiskStats stats = disk.stats();
  EXPECT_EQ(stats.page_writes, 2u);
  EXPECT_EQ(stats.page_reads, 1u);
  EXPECT_EQ(stats.bytes_written, 128u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().page_writes, 0u);
}

TEST(SimDiskTest, SequentialAccessAvoidsSeeks) {
  SimClock clock;
  SimDiskOptions options = SmallDisk(&clock);
  options.seek_micros = 10'000;
  options.transfer_micros_per_byte = 1;
  SimDisk disk(options);
  Bytes data(64, 1);

  ASSERT_TRUE(disk.WritePage(0, AsSpan(data)).ok());
  Micros first = clock.NowMicros();
  EXPECT_EQ(first, 10'000 + 64);  // seek + transfer

  ASSERT_TRUE(disk.WritePage(1, AsSpan(data)).ok());
  EXPECT_EQ(clock.NowMicros() - first, 64);  // sequential: transfer only

  ASSERT_TRUE(disk.WritePage(1, AsSpan(data)).ok());  // same page again: rotational delay
  EXPECT_EQ(clock.NowMicros() - first, 64 + 10'000 + 64);
}

TEST(SimDiskTest, RandomAccessPaysSeeks) {
  SimClock clock;
  SimDiskOptions options = SmallDisk(&clock);
  options.seek_micros = 1000;
  options.transfer_micros_per_byte = 0;
  SimDisk disk(options);
  Bytes data(64, 1);
  ASSERT_TRUE(disk.WritePage(10, AsSpan(data)).ok());
  ASSERT_TRUE(disk.WritePage(50, AsSpan(data)).ok());
  ASSERT_TRUE(disk.WritePage(10, AsSpan(data)).ok());
  EXPECT_EQ(clock.NowMicros(), 3000);
  EXPECT_EQ(disk.stats().seeks, 3u);
}

TEST(SimDiskTest, MicroVaxCalibrationCheckpointRate) {
  // 1 MB streamed sequentially should take ~5 s at the paper-calibrated defaults.
  SimClock clock;
  SimDiskOptions options;  // paper defaults: 512 B pages, 15 ms seek, 5 us/B
  options.clock = &clock;
  SimDisk disk(options);
  Bytes page(512, 7);
  for (PageId p = 0; p < 2048; ++p) {  // 1 MB
    ASSERT_TRUE(disk.WritePage(p, AsSpan(page)).ok());
  }
  double seconds = static_cast<double>(clock.NowMicros()) / 1e6;
  EXPECT_NEAR(seconds, 5.24, 0.3);
}

}  // namespace
}  // namespace sdb
