// sim_fuzz: the simulation-fuzzing driver.
//
//   sim_fuzz --seeds=1:200 --schedule=all        # sweep (ctest runs this bounded form)
//   sim_fuzz --seed=42 --schedule=multi-crash    # reproduce one failing seed
//
// Every run is a pure function of its seed. On failure the driver prints the one-line
// repro, shrinks the (steps, fault script) pair, prints the minimized script, and
// exits nonzero. --artifacts=DIR additionally writes one repro file per failing seed
// (CI uploads these).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/harness.h"
#include "src/sim/shrink.h"

namespace {

using sdb::sim::HarnessOptions;
using sdb::sim::ReportToString;
using sdb::sim::RunReport;
using sdb::sim::RunSeed;
using sdb::sim::ScheduleKind;
using sdb::sim::ScheduleKindName;
using sdb::sim::ShrinkFailure;
using sdb::sim::ShrinkOptions;
using sdb::sim::ShrinkResult;

struct Flags {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 50;
  bool single_seed = false;
  std::string schedule = "all";  // one ScheduleKindName, or "all"
  std::string mix = "default";   // default, checkpoint-heavy, restart-heavy,
                                 // compaction-heavy or network
  int steps = 40;
  int shards = 1;  // > 1 fuzzes ShardedDatabase (merged-state + routing oracle)
  int recovery_threads = 0;  // 0 = mix default (restart-heavy: 4, otherwise 1)
  int recheck = 0;        // re-run the first N seeds and assert identical trace hashes
  std::string artifacts;  // directory for per-failure repro files
  bool quiet = false;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      std::size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
      }
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = value_of("--seed")) != nullptr) {
      flags->seed_lo = flags->seed_hi = std::strtoull(v, nullptr, 10);
      flags->single_seed = true;
    } else if ((v = value_of("--seeds")) != nullptr) {
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "--seeds wants LO:HI, got %s\n", v);
        return false;
      }
      flags->seed_lo = std::strtoull(v, nullptr, 10);
      flags->seed_hi = std::strtoull(colon + 1, nullptr, 10);
    } else if ((v = value_of("--schedule")) != nullptr) {
      flags->schedule = v;
    } else if ((v = value_of("--mix")) != nullptr) {
      flags->mix = v;
    } else if ((v = value_of("--steps")) != nullptr) {
      flags->steps = std::atoi(v);
    } else if ((v = value_of("--shards")) != nullptr) {
      flags->shards = std::atoi(v);
      if (flags->shards < 1) {
        std::fprintf(stderr, "--shards wants a positive count, got %s\n", v);
        return false;
      }
    } else if ((v = value_of("--recovery-threads")) != nullptr) {
      flags->recovery_threads = std::atoi(v);
      if (flags->recovery_threads < 1) {
        std::fprintf(stderr, "--recovery-threads wants a positive count, got %s\n", v);
        return false;
      }
    } else if ((v = value_of("--recheck")) != nullptr) {
      flags->recheck = std::atoi(v);
    } else if ((v = value_of("--artifacts")) != nullptr) {
      flags->artifacts = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      flags->quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return false;
    }
  }
  if (flags->seed_hi < flags->seed_lo) {
    std::fprintf(stderr, "empty seed range\n");
    return false;
  }
  return true;
}

std::vector<ScheduleKind> SchedulesFor(const std::string& name) {
  if (name == "all") {
    return {ScheduleKind::kMultiCrash, ScheduleKind::kTransient,
            ScheduleKind::kTornSwitch, ScheduleKind::kMixed};
  }
  ScheduleKind kind;
  if (!sdb::sim::ParseScheduleKind(name, &kind)) {
    return {};
  }
  return {kind};
}

void WriteArtifact(const std::string& dir, const RunReport& failure,
                   const ShrinkResult& shrunk) {
  std::string path = dir + "/seed-" + std::to_string(failure.seed) + "-" +
                     ScheduleKindName(failure.schedule) + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write artifact %s\n", path.c_str());
    return;
  }
  std::string text = ReportToString(failure);
  text += "\n\nshrunk (";
  text += std::to_string(shrunk.runs_used);
  text += " replays):\n";
  text += ReportToString(shrunk.report);
  text += "\n";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  // Crash paths log warnings by design; a fuzzer would drown in them.
  sdb::SetLogThreshold(sdb::LogLevel::kError);

  std::vector<ScheduleKind> schedules = SchedulesFor(flags.schedule);
  if (schedules.empty()) {
    std::fprintf(stderr, "unknown schedule %s\n", flags.schedule.c_str());
    return 2;
  }

  HarnessOptions options;
  if (flags.mix == "checkpoint-heavy") {
    options.workload = sdb::sim::CheckpointHeavyWorkload();
  } else if (flags.mix == "restart-heavy") {
    options.workload = sdb::sim::RestartHeavyWorkload();
    // The restart-heavy mix exists to fuzz the parallel replay pipeline: every fifth
    // step reboots, and recovery runs multi-threaded unless overridden.
    options.recovery_threads = 4;
  } else if (flags.mix == "compaction-heavy") {
    options.workload = sdb::sim::CompactionHeavyWorkload();
    // Tiny thresholds so delta chains collapse every couple of checkpoints: the
    // fault schedules then land on compaction's rewrite / publish / reclaim steps,
    // not only on delta publication.
    options.compact_after_deltas = 2;
    options.compact_delta_base_ratio = 0.25;
  } else if (flags.mix == "network") {
    // The default workload, but every KV step crosses the simulated wire: the
    // schedule's network preset (drops, half-open responses, corrupt/truncated
    // frames, partitions, slow peers) runs on top of its disk preset, and the
    // acknowledged-state oracle treats wire-failed updates as pending.
    options.network = true;
  } else if (flags.mix != "default") {
    std::fprintf(stderr,
                 "unknown mix %s (want default, checkpoint-heavy, restart-heavy, "
                 "compaction-heavy or network)\n",
                 flags.mix.c_str());
    return 2;
  }
  if (options.network && flags.shards > 1) {
    std::fprintf(stderr, "--mix=network supports only --shards=1\n");
    return 2;
  }
  options.workload.steps = flags.steps;
  options.shards = flags.shards;
  if (flags.recovery_threads > 0) {
    options.recovery_threads = flags.recovery_threads;
  }

  int failures = 0;
  std::uint64_t runs = 0;
  for (std::uint64_t seed = flags.seed_lo; seed <= flags.seed_hi; ++seed) {
    for (ScheduleKind schedule : schedules) {
      options.schedule = schedule;
      RunReport report = RunSeed(seed, options);
      ++runs;
      if (report.ok) {
        if (!flags.quiet && flags.single_seed) {
          std::printf("%s\n", ReportToString(report).c_str());
        }
        continue;
      }
      ++failures;
      std::printf("%s\n", ReportToString(report).c_str());
      ShrinkOptions shrink_options;
      shrink_options.harness = options;
      ShrinkResult shrunk = ShrinkFailure(report, shrink_options);
      std::printf("shrunk to %zu steps / %zu fault points in %d replays:\n%s\n",
                  shrunk.steps.size(), shrunk.points.size(), shrunk.runs_used,
                  ReportToString(shrunk.report).c_str());
      if (!flags.artifacts.empty()) {
        WriteArtifact(flags.artifacts, report, shrunk);
      }
    }
  }

  // Reproducibility sweep: the same seed twice must yield the identical trace hash.
  int recheck = flags.recheck;
  for (std::uint64_t seed = flags.seed_lo; recheck > 0 && seed <= flags.seed_hi;
       ++seed, --recheck) {
    for (ScheduleKind schedule : schedules) {
      options.schedule = schedule;
      RunReport first = RunSeed(seed, options);
      RunReport second = RunSeed(seed, options);
      ++runs;
      ++runs;
      if (first.trace_hash != second.trace_hash) {
        ++failures;
        std::printf(
            "NONDETERMINISM seed=%llu schedule=%s: trace hashes differ across "
            "identical runs\n",
            static_cast<unsigned long long>(seed), ScheduleKindName(schedule).c_str());
      }
    }
  }

  if (!flags.quiet) {
    std::printf("sim_fuzz: %llu runs, %d failure(s)\n",
                static_cast<unsigned long long>(runs), failures);
  }
  return failures == 0 ? 0 : 1;
}
