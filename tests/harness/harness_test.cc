// Tests for the simulation harness itself: the oracle's semantics, seed determinism,
// fault-schedule injectors (including thread-safety, exercised under TSan via the CI
// *Concurrent* filter), scripted replay fidelity, the planted-bug canary, and the
// shrinker.
#include <cstdlib>
#include <thread>

#include <gtest/gtest.h>

#include "src/sim/fault_schedule.h"
#include "src/sim/harness.h"
#include "src/sim/oracle.h"
#include "src/sim/shrink.h"
#include "src/sim/workload.h"
#include "src/storage/sim_disk.h"

namespace sdb::sim {
namespace {

HarnessOptions SmallOptions(ScheduleKind schedule) {
  HarnessOptions options;
  options.workload.steps = 40;
  options.schedule = schedule;
  return options;
}

TEST(ModelOracleTest, TracksAcknowledgedState) {
  ModelOracle oracle;
  oracle.AckPut("a", "1");
  oracle.AckPut("b", "2");
  oracle.AckDelete("a");
  EXPECT_TRUE(oracle.CheckLive({{"b", "2"}}).ok());
  EXPECT_FALSE(oracle.CheckLive({{"a", "1"}, {"b", "2"}}).ok());
  EXPECT_FALSE(oracle.CheckLive({{"b", "stale"}}).ok());
  EXPECT_FALSE(oracle.CheckLive({}).ok());
}

TEST(ModelOracleTest, PendingOpsExplainRecoveryDivergence) {
  ModelOracle oracle;
  oracle.AckPut("k", "acked");
  oracle.PendingPut("k", "maybe");
  oracle.PendingPut("x", "phantom");
  oracle.PendingDelete("k");

  // Any combination of the unacknowledged ops being durable is legal...
  EXPECT_TRUE(oracle.CheckRecovered({{"k", "acked"}}).ok());
  EXPECT_TRUE(oracle.CheckRecovered({{"k", "maybe"}}).ok());
  EXPECT_TRUE(oracle.CheckRecovered({{"k", "maybe"}, {"x", "phantom"}}).ok());
  EXPECT_TRUE(oracle.CheckRecovered({}).ok());  // pending delete of k
  // ...but unexplained values and losses are not.
  EXPECT_FALSE(oracle.CheckRecovered({{"k", "garbage"}}).ok());
  EXPECT_FALSE(oracle.CheckRecovered({{"k", "acked"}, {"y", "who"}}).ok());

  // Adopt snaps the model to the recovered truth and clears the pending set.
  oracle.Adopt({{"k", "maybe"}});
  EXPECT_EQ(oracle.pending_ops(), 0u);
  EXPECT_FALSE(oracle.CheckRecovered({}).ok());  // "maybe" is acknowledged now
}

TEST(ModelOracleTest, RelaxedChecksAcceptHalfOpenDivergence) {
  // Over a half-open connection an update can execute server-side while its
  // acknowledgment is lost: live state runs AHEAD of the model. The relaxed checks
  // accept exactly the divergences a pending op explains — nothing more.
  ModelOracle oracle;
  oracle.AckPut("k", "acked");
  oracle.PendingPut("k", "maybe");
  oracle.PendingPut("x", "phantom");

  EXPECT_TRUE(oracle.CheckLiveRelaxed({{"k", "acked"}}).ok());
  EXPECT_TRUE(oracle.CheckLiveRelaxed({{"k", "maybe"}, {"x", "phantom"}}).ok());
  EXPECT_FALSE(oracle.CheckLiveRelaxed({{"k", "garbage"}}).ok());
  EXPECT_FALSE(oracle.CheckLiveRelaxed({{"k", "acked"}, {"y", "who"}}).ok());

  EXPECT_TRUE(oracle.CheckKeyRelaxed("k", true, "acked").ok());
  EXPECT_TRUE(oracle.CheckKeyRelaxed("k", true, "maybe").ok());
  EXPECT_FALSE(oracle.CheckKeyRelaxed("k", true, "garbage").ok());
  EXPECT_FALSE(oracle.CheckKeyRelaxed("k", false, "").ok());  // no pending delete
  EXPECT_TRUE(oracle.CheckKeyRelaxed("x", true, "phantom").ok());
  EXPECT_TRUE(oracle.CheckKeyRelaxed("x", false, "").ok());  // never acknowledged
  EXPECT_FALSE(oracle.CheckKeyRelaxed("y", true, "who").ok());

  oracle.PendingDelete("k");
  EXPECT_TRUE(oracle.CheckKeyRelaxed("k", false, "").ok());
  EXPECT_TRUE(oracle.CheckLiveRelaxed({}).ok());
}

TEST(WorkloadTest, PureFunctionOfSeed) {
  WorkloadOptions options;
  auto a = GenerateWorkload(7, options);
  auto b = GenerateWorkload(7, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(StepToString(a[i]), StepToString(b[i]));
  }
  auto c = GenerateWorkload(8, options);
  bool identical = a.size() == c.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = StepToString(a[i]) == StepToString(c[i]);
  }
  EXPECT_FALSE(identical);
}

TEST(HarnessTest, SameSeedSameTraceHash) {
  for (ScheduleKind schedule :
       {ScheduleKind::kMultiCrash, ScheduleKind::kTransient, ScheduleKind::kMixed}) {
    HarnessOptions options = SmallOptions(schedule);
    RunReport first = RunSeed(3, options);
    RunReport second = RunSeed(3, options);
    ASSERT_TRUE(first.ok) << first.failure;
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(first.trace_hash, second.trace_hash)
        << "schedule " << ScheduleKindName(schedule);
    EXPECT_EQ(first.fired_points.size(), second.fired_points.size());
  }
}

TEST(HarnessTest, SurvivesMultiCrashSchedules) {
  // Across a few seeds the multi-crash schedule must actually crash (several times,
  // including during recovery) and every recovery must satisfy the oracle.
  std::uint64_t total_faults = 0;
  std::uint64_t total_reboots = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunReport report = RunSeed(seed, SmallOptions(ScheduleKind::kMultiCrash));
    ASSERT_TRUE(report.ok) << ReportToString(report);
    total_faults += report.fired_points.size();
    total_reboots += report.reboots;
  }
  EXPECT_GT(total_faults, 0u);
  // Boot + final verify alone are 2 per run; more means mid-run power cycles.
  EXPECT_GT(total_reboots, 2u * 8);
}

TEST(HarnessTest, SurvivesTransientErrorsWithoutCrashing) {
  std::uint64_t total_transients = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunReport report = RunSeed(seed, SmallOptions(ScheduleKind::kTransient));
    ASSERT_TRUE(report.ok) << ReportToString(report);
    total_transients += report.transient_errors;
  }
  EXPECT_GT(total_transients, 0u);
}

TEST(HarnessTest, SurvivesTornSwitchSchedules) {
  std::uint64_t torn_fired = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunReport report = RunSeed(seed, SmallOptions(ScheduleKind::kTornSwitch));
    ASSERT_TRUE(report.ok) << ReportToString(report);
    for (const FaultPoint& point : report.fired_points) {
      torn_fired += point.action == FaultAction::kCrashTorn ? 1 : 0;
    }
  }
  EXPECT_GT(torn_fired, 0u);
}

TEST(HarnessTest, ScriptedReplayReproducesSeededRun) {
  // Replaying (steps, fired points) through the scripted schedule is the exact same
  // run: every decision the random schedule made besides the fired ones was kNone.
  HarnessOptions options = SmallOptions(ScheduleKind::kMixed);
  RunReport seeded = RunSeed(11, options);
  ASSERT_TRUE(seeded.ok) << ReportToString(seeded);
  RunReport replayed = RunScript(seeded.steps, seeded.fired_points, options, 11);
  ASSERT_TRUE(replayed.ok) << ReportToString(replayed);
  EXPECT_EQ(seeded.trace_hash, replayed.trace_hash);
}

// --- sharded mode: the same harness driving ShardedDatabase (options.shards > 1) ---

HarnessOptions ShardedOptionsFor(ScheduleKind schedule, int shards) {
  HarnessOptions options = SmallOptions(schedule);
  options.shards = shards;
  return options;
}

TEST(ShardedHarnessTest, SameSeedSameTraceHash) {
  // Determinism must survive the sharded engine: sequential recovery, index-order
  // rotation attempts, and a coalescer that sees no concurrent arrivals from the
  // single-threaded harness.
  for (ScheduleKind schedule :
       {ScheduleKind::kMultiCrash, ScheduleKind::kTornSwitch, ScheduleKind::kMixed}) {
    HarnessOptions options = ShardedOptionsFor(schedule, 4);
    RunReport first = RunSeed(3, options);
    RunReport second = RunSeed(3, options);
    ASSERT_TRUE(first.ok) << first.failure;
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(first.trace_hash, second.trace_hash)
        << "schedule " << ScheduleKindName(schedule);
    EXPECT_EQ(first.fired_points.size(), second.fired_points.size());
  }
}

TEST(ShardedHarnessTest, SurvivesMultiCrashSchedules) {
  // Every recovery reopens all four shards off the shared log and must satisfy
  // the merged-state oracle plus the routing invariant.
  std::uint64_t total_faults = 0;
  std::uint64_t total_reboots = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunReport report = RunSeed(seed, ShardedOptionsFor(ScheduleKind::kMultiCrash, 4));
    ASSERT_TRUE(report.ok) << ReportToString(report);
    total_faults += report.fired_points.size();
    total_reboots += report.reboots;
  }
  EXPECT_GT(total_faults, 0u);
  EXPECT_GT(total_reboots, 2u * 8);
}

TEST(ShardedHarnessTest, ScriptedReplayReproducesSeededRun) {
  HarnessOptions options = ShardedOptionsFor(ScheduleKind::kMixed, 4);
  RunReport seeded = RunSeed(11, options);
  ASSERT_TRUE(seeded.ok) << ReportToString(seeded);
  RunReport replayed = RunScript(seeded.steps, seeded.fired_points, options, 11);
  ASSERT_TRUE(replayed.ok) << ReportToString(replayed);
  EXPECT_EQ(seeded.trace_hash, replayed.trace_hash);
}

TEST(ShardedHarnessTest, CheckpointHeavyMixAimsFaultsAtRotation) {
  // The checkpoint-heavy mix raises kCheckpoint/kBackup frequency; in sharded mode
  // those are per-shard checkpoints and full rotation attempts, so the torn-switch
  // schedule concentrates faults on the shared-log swap protocol.
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    HarnessOptions options = ShardedOptionsFor(ScheduleKind::kTornSwitch, 3);
    options.workload = CheckpointHeavyWorkload();
    options.workload.steps = 40;
    RunReport report = RunSeed(seed, options);
    ASSERT_TRUE(report.ok) << ReportToString(report);
    total_faults += report.fired_points.size();
  }
  EXPECT_GT(total_faults, 0u);
}

// --- network mode: every KV step crosses the simulated wire (options.network) ---

HarnessOptions NetworkOptionsFor(ScheduleKind schedule) {
  HarnessOptions options = SmallOptions(schedule);
  options.network = true;
  return options;
}

TEST(NetworkHarnessTest, SameSeedSameTraceHash) {
  // Wire-fault draws are stateless hashes of (seed, op ordinal, lane) and every
  // fired network fault is mixed into the trace, so determinism must survive the
  // simulated transport end to end.
  for (ScheduleKind schedule :
       {ScheduleKind::kMultiCrash, ScheduleKind::kTransient, ScheduleKind::kTornSwitch,
        ScheduleKind::kMixed}) {
    HarnessOptions options = NetworkOptionsFor(schedule);
    RunReport first = RunSeed(3, options);
    RunReport second = RunSeed(3, options);
    ASSERT_TRUE(first.ok) << first.failure;
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_TRUE(first.network);
    EXPECT_EQ(first.trace_hash, second.trace_hash)
        << "schedule " << ScheduleKindName(schedule);
  }
}

TEST(NetworkHarnessTest, SurvivesNetworkSchedules) {
  // Across a few seeds each schedule's network preset must actually fire wire
  // faults (drops, half-open responses, corrupt/truncated frames, partitions) and
  // every crash/recovery must still satisfy the acknowledged-state oracle.
  std::uint64_t total_reboots = 0;
  for (ScheduleKind schedule : {ScheduleKind::kTransient, ScheduleKind::kMixed}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      RunReport report = RunSeed(seed, NetworkOptionsFor(schedule));
      ASSERT_TRUE(report.ok) << ReportToString(report);
      total_reboots += report.reboots;
    }
  }
  EXPECT_GT(total_reboots, 0u);
}

TEST(HarnessTest, CanaryRecoveryBugIsCaughtAndShrinks) {
  // SDB_SIM_CANARY=1 plants a real lost-acknowledged-update bug in log replay
  // (src/core/log_reader.cc drops the final entry). The oracle must catch it within
  // a small sweep, the failure must replay as a script, and the shrinker must strip
  // it down.
  ASSERT_EQ(setenv("SDB_SIM_CANARY", "1", 1), 0);
  HarnessOptions options = SmallOptions(ScheduleKind::kMultiCrash);
  RunReport failure;
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    failure = RunSeed(seed, options);
    caught = !failure.ok;
  }
  ASSERT_TRUE(caught) << "planted recovery bug escaped a 20-seed sweep";
  EXPECT_NE(failure.failure.find("oracle"), std::string::npos) << failure.failure;

  ShrinkOptions shrink_options;
  shrink_options.harness = options;
  ShrinkResult shrunk = ShrinkFailure(failure, shrink_options);
  EXPECT_TRUE(shrunk.reproduced) << "fired points did not replay the failure";
  EXPECT_FALSE(shrunk.report.ok);
  EXPECT_LE(shrunk.steps.size(), failure.steps.size());
  EXPECT_LT(shrunk.steps.size(), failure.steps.size())
      << "shrinker removed nothing from a " << failure.steps.size() << "-step repro";
  ASSERT_EQ(unsetenv("SDB_SIM_CANARY"), 0);

  // With the canary off the shrunk script must pass again — the bug was the canary.
  RunReport clean = RunScript(shrunk.steps, shrunk.points, options, failure.seed);
  EXPECT_TRUE(clean.ok) << ReportToString(clean);
}

TEST(HarnessTest, CanaryOffByDefault) {
  ASSERT_EQ(unsetenv("SDB_SIM_CANARY"), 0);
  RunReport report = RunSeed(1, SmallOptions(ScheduleKind::kNone));
  EXPECT_TRUE(report.ok) << ReportToString(report);
  EXPECT_TRUE(report.fired_points.empty());
}

TEST(FaultScheduleTest, TransientPointFailsOnceThenRetrySucceeds) {
  ScriptedFaultSchedule schedule(
      {FaultPoint{1, FaultAction::kTransientError, false, false}});
  SimDisk disk;
  disk.SetFaultInjector(schedule.AsInjector());
  Bytes page(disk.page_size(), 0x5A);
  EXPECT_FALSE(disk.WritePage(0, AsSpan(page)).ok());  // durable op 1: transient
  EXPECT_FALSE(disk.crashed());
  EXPECT_TRUE(disk.WritePage(0, AsSpan(page)).ok());  // durable op 2: clean retry
  EXPECT_EQ(disk.stats().transient_errors, 1u);
  Bytes out;
  EXPECT_TRUE(disk.ReadPage(0, out).ok());
  EXPECT_EQ(out, page);
}

// Runs under TSan in CI (the thread-sanitizer job's *Concurrent* filter): concurrent
// injector decisions must be race-free and identical to a single-threaded oracle —
// fault decisions are stateless hashes of op ordinals, not RNG-stream draws.
TEST(FaultScheduleConcurrentTest, RandomScheduleDecisionsAreOrderIndependent) {
  RandomFaultOptions options;
  options.crash_before = 0.02;
  options.crash_torn = 0.02;
  options.transient_write = 0.05;
  options.transient_read = 0.05;
  // Unbounded budgets: with budgets in play, outcomes near exhaustion legitimately
  // depend on arrival order; determinism is claimed for the stateless draws.
  options.max_crashes = ~std::uint64_t{0};
  options.max_transients = ~std::uint64_t{0};

  constexpr std::uint64_t kOps = 4096;
  RandomFaultSchedule reference(99, options);
  std::vector<FaultAction> expected(kOps + 1);
  for (std::uint64_t seq = 1; seq <= kOps; ++seq) {
    DurableOp op;
    op.kind = seq % 3 == 0 ? DurableOp::Kind::kPageRead : DurableOp::Kind::kPageWrite;
    op.sequence = seq;
    expected[seq] = reference.Decide(op);
  }

  RandomFaultSchedule schedule(99, options);
  constexpr int kThreads = 8;
  std::vector<std::vector<FaultAction>> got(kThreads,
                                            std::vector<FaultAction>(kOps + 1));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Every thread decides every op — decisions must agree regardless of
      // interleaving or repetition.
      for (std::uint64_t seq = 1; seq <= kOps; ++seq) {
        DurableOp op;
        op.kind =
            seq % 3 == 0 ? DurableOp::Kind::kPageRead : DurableOp::Kind::kPageWrite;
        op.sequence = seq;
        got[static_cast<std::size_t>(t)][seq] = schedule.Decide(op);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t seq = 1; seq <= kOps; ++seq) {
      ASSERT_EQ(got[static_cast<std::size_t>(t)][seq], expected[seq])
          << "thread " << t << " op " << seq;
    }
  }
}

TEST(FaultScheduleConcurrentTest, CrashPlanDecideIsThreadSafe) {
  CrashPlan plan(500, FaultAction::kCrashTorn);
  constexpr int kThreads = 8;
  std::atomic<int> fired_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (std::uint64_t seq = 1 + static_cast<std::uint64_t>(t); seq <= 1000;
           seq += kThreads) {
        DurableOp op;
        op.sequence = seq;
        if (plan.Decide(op) != FaultAction::kNone) {
          fired_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(fired_count.load(), 1);
  EXPECT_TRUE(plan.fired());
}

}  // namespace
}  // namespace sdb::sim
