// Tests for the cross-thread group-commit pipeline (src/core/group_commit.h):
//   - concurrent Update() callers coalesce onto shared fsyncs, and every
//     acknowledged update survives a reopen;
//   - applies happen in log order (live order == replay order);
//   - enquiries are never blocked while a commit batch is on the disk;
//   - an apply failure poisons every waiter of the batch, and ReplaceState heals;
//   - checkpoints interleave safely with concurrent writers;
//   - the serial (group_commit.enabled = false) path still does one fsync per update;
//   - concurrent NameServer Sets mint gap-free replication sequence numbers even when
//     their prepares share one batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/nameserver/name_server.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;
using ::sdb::testing::TestRecord;

// A delegating Vfs that runs a caller-supplied hook at the top of every File::Sync.
// Used to dilate the commit fsync (so concurrent updaters pile up and coalesce) and
// to probe what the engine allows while a sync is in flight.
class SyncHookFile final : public File {
 public:
  SyncHookFile(std::unique_ptr<File> inner, const std::function<void()>* hook)
      : inner_(std::move(inner)), hook_(hook) {}

  Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) override {
    return inner_->ReadAt(offset, length);
  }
  Status Append(ByteSpan data) override { return inner_->Append(data); }
  Status WriteAt(std::uint64_t offset, ByteSpan data) override {
    return inner_->WriteAt(offset, data);
  }
  Status Truncate(std::uint64_t new_size) override { return inner_->Truncate(new_size); }
  Status Sync() override {
    (*hook_)();
    return inner_->Sync();
  }
  Result<std::uint64_t> Size() override { return inner_->Size(); }
  Status Close() override { return inner_->Close(); }

 private:
  std::unique_ptr<File> inner_;
  const std::function<void()>* hook_;
};

class SyncHookFs final : public Vfs {
 public:
  explicit SyncHookFs(Vfs& inner) : inner_(inner) {}

  void set_hook(std::function<void()> hook) { hook_ = std::move(hook); }

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override {
    SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, inner_.Open(path, mode));
    return std::unique_ptr<File>(new SyncHookFile(std::move(file), &hook_));
  }
  Status Delete(std::string_view path) override { return inner_.Delete(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return inner_.Rename(from, to);
  }
  Result<bool> Exists(std::string_view path) override { return inner_.Exists(path); }
  Result<std::vector<std::string>> List(std::string_view dir) override {
    return inner_.List(dir);
  }
  Status CreateDir(std::string_view path) override { return inner_.CreateDir(path); }
  Status SyncDir(std::string_view dir) override { return inner_.SyncDir(dir); }

 private:
  Vfs& inner_;
  std::function<void()> hook_ = [] {};
};

DatabaseOptions BaseOptions(SimEnv& env, Vfs& vfs) {
  DatabaseOptions options;
  options.vfs = &vfs;
  options.dir = "db";
  options.clock = &env.clock();
  return options;
}

SimEnv MakeEnv() {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  return SimEnv(env_options);
}

TEST(GroupCommitTest, ConcurrentUpdatesCoalesceAndSurviveReopen) {
  SimEnv env = MakeEnv();
  SyncHookFs fs(env.fs());
  std::atomic<bool> armed{false};
  fs.set_hook([&armed] {
    if (armed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  TestApp app;
  {
    auto db_or = Database::Open(app, BaseOptions(env, fs));
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);
    armed.store(true);

    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
          if (!db->Update(app.PreparePut(key, "v-" + key)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& w : writers) {
      w.join();
    }
    armed.store(false);
    ASSERT_EQ(failures.load(), 0);

    DatabaseStats stats = db->stats();
    EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.group_commit.records_committed,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    // The whole point: fewer fsyncs than records. With 8 updaters against a dilated
    // fsync, batches of one would require a total absence of overlap.
    EXPECT_LT(stats.group_commit.syncs, stats.group_commit.records_committed);
    EXPECT_GT(stats.group_commit.sync_waits, 0u);
    EXPECT_GT(stats.group_commit.records_per_sync(), 1.0);
    EXPECT_EQ(app.state.size(), static_cast<std::size_t>(kThreads * kPerThread));
  }

  // Every acknowledged update survives a reopen (replayed from the log).
  TestApp recovered;
  auto db_or = Database::Open(recovered, BaseOptions(env, env.fs()));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  ASSERT_EQ(recovered.state.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
      ASSERT_EQ(recovered.state.count(key), 1u) << key;
      EXPECT_EQ(recovered.state[key], "v-" + key);
    }
  }
}

// Records the key of every applied update, both live and during replay.
class OrderRecorderApp final : public Application {
 public:
  Status ResetState() override {
    order.clear();
    return OkStatus();
  }
  Result<Bytes> SerializeState() override {
    PickleWriter writer;
    writer.Write(order);
    return std::move(writer).FinishEnvelope("OrderRecorderApp.state");
  }
  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "OrderRecorderApp.state"));
    return reader.Read(order);
  }
  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(TestRecord update, PickleRead<TestRecord>(record));
    order.push_back(update.key);
    return OkStatus();
  }

  std::vector<std::string> order;
};

TEST(GroupCommitTest, AppliesFollowLogOrder) {
  SimEnv env = MakeEnv();
  SyncHookFs fs(env.fs());
  std::atomic<bool> armed{false};
  fs.set_hook([&armed] {
    if (armed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  OrderRecorderApp app;
  {
    auto db_or = Database::Open(app, BaseOptions(env, fs));
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);
    armed.store(true);

    std::vector<std::thread> writers;
    for (int t = 0; t < 6; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < 20; ++i) {
          std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
          ASSERT_TRUE(db->Update([key]() -> Result<Bytes> {
                          return PickleWrite(TestRecord{key, "x"});
                        }).ok());
        }
      });
    }
    for (std::thread& w : writers) {
      w.join();
    }
    armed.store(false);
  }

  // The order the live engine applied updates in must equal the order the log
  // replays them in — the definition of "applies happen in log order".
  OrderRecorderApp replayed;
  auto db_or = Database::Open(replayed, BaseOptions(env, env.fs()));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  EXPECT_EQ(replayed.order, app.order);
}

TEST(GroupCommitTest, EnquiriesRunDuringCommitSync) {
  SimEnv env = MakeEnv();
  SyncHookFs fs(env.fs());

  TestApp app;
  auto db_or = Database::Open(app, BaseOptions(env, fs));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  // Once armed, the commit fsync parks until an enquiry has completed (or a
  // deadline passes, failing the test): proof that a batch on the disk excludes
  // no readers — the paper's "never exclude enquiry operations during disk
  // transfers", now with no lock held at all during the sync.
  std::mutex mu;
  std::condition_variable cv;
  bool in_sync = false;
  bool enquiry_done = false;
  bool enquiry_ran_during_sync = false;
  std::atomic<bool> armed{false};
  fs.set_hook([&] {
    if (!armed.load()) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu);
    in_sync = true;
    cv.notify_all();
    enquiry_ran_during_sync = cv.wait_for(lock, std::chrono::seconds(5),
                                          [&] { return enquiry_done; });
    in_sync = false;
  });

  ASSERT_TRUE(db->Update(app.PreparePut("before", "sync")).ok());
  armed.store(true);

  std::thread writer([&] {
    EXPECT_TRUE(db->Update(app.PreparePut("during", "sync")).ok());
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return in_sync; }));
  }
  std::string seen;
  ASSERT_TRUE(db->Enquire([&app, &seen] {
                  seen = app.state.at("before");
                  return OkStatus();
                }).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    enquiry_done = true;
  }
  cv.notify_all();
  writer.join();
  armed.store(false);

  EXPECT_EQ(seen, "sync");
  EXPECT_TRUE(enquiry_ran_during_sync);
}

TEST(GroupCommitTest, ApplyFailurePoisonsAndReplaceStateHeals) {
  SimEnv env = MakeEnv();
  TestApp app;
  auto db_or = Database::Open(app, BaseOptions(env, env.fs()));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  ASSERT_TRUE(db->Update(app.PreparePut("ok", "1")).ok());

  app.fail_next_apply = true;
  Status poisoned = db->Update(app.PreparePut("bad", "2"));
  EXPECT_TRUE(poisoned.Is(ErrorCode::kInternal)) << poisoned;

  // Every subsequent operation fails closed until the state is replaced.
  EXPECT_TRUE(db->Update(app.PreparePut("after", "3")).Is(ErrorCode::kInternal));
  EXPECT_TRUE(db->Enquire([] { return OkStatus(); }).Is(ErrorCode::kInternal));
  EXPECT_TRUE(db->Checkpoint().Is(ErrorCode::kInternal));

  TestApp healthy;
  healthy.state["healed"] = "yes";
  auto snapshot = healthy.SerializeState();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(db->ReplaceState(AsSpan(*snapshot)).ok());

  ASSERT_TRUE(db->Update(app.PreparePut("after-heal", "4")).ok());
  EXPECT_EQ(app.state.at("healed"), "yes");
  EXPECT_EQ(app.state.at("after-heal"), "4");
}

TEST(GroupCommitTest, CheckpointsInterleaveWithConcurrentWriters) {
  SimEnv env = MakeEnv();
  SyncHookFs fs(env.fs());
  std::atomic<bool> armed{false};
  fs.set_hook([&armed] {
    if (armed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  TestApp app;
  {
    auto db_or = Database::Open(app, BaseOptions(env, fs));
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    std::unique_ptr<Database> db = std::move(*db_or);
    armed.store(true);

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
          ASSERT_TRUE(db->Update(app.PreparePut(key, "v-" + key)).ok());
        }
      });
    }
    std::thread checkpointer([&] {
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(db->Checkpoint().ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    for (std::thread& w : writers) {
      w.join();
    }
    checkpointer.join();
    armed.store(false);
    EXPECT_EQ(app.state.size(), static_cast<std::size_t>(kThreads * kPerThread));
  }

  // No acknowledged update may be orphaned by a log switch: everything survives.
  TestApp recovered;
  auto db_or = Database::Open(recovered, BaseOptions(env, env.fs()));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  EXPECT_EQ(recovered.state.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(GroupCommitTest, SerialPathDoesOneFsyncPerUpdate) {
  SimEnv env = MakeEnv();
  TestApp app;
  DatabaseOptions options = BaseOptions(env, env.fs());
  options.group_commit.enabled = false;

  auto db_or = Database::Open(app, options);
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(app.PreparePut("b", "2")).ok());

  DatabaseStats stats = db->stats();
  EXPECT_EQ(stats.updates, 2u);
  EXPECT_EQ(stats.group_commit.syncs, 0u);  // pipeline not in play
  EXPECT_EQ(db->log_writer_stats().commits, 2u);
  EXPECT_EQ(db->log_writer_stats().entries_appended, 2u);
}

TEST(GroupCommitTest, UpdateManySharesOneFsyncWithIndependentOutcomes) {
  // The transport-side ingest hook: one UpdateMany call carries N independent
  // updates (decoded requests from many sockets) into the pipeline, where one seal
  // catches them all — so the whole batch costs about one fsync, and a precondition
  // failure drops only its own update.
  SimEnv env = MakeEnv();
  TestApp app;
  auto db_or = Database::Open(app, BaseOptions(env, env.fs()));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  ASSERT_TRUE(db->Update(app.PreparePut("taken", "old")).ok());
  const std::uint64_t syncs_before = db->stats().group_commit.syncs;

  std::vector<std::function<Result<Bytes>()>> prepares;
  for (int i = 0; i < 16; ++i) {
    prepares.push_back(app.PreparePut("k" + std::to_string(i), "v" + std::to_string(i)));
  }
  prepares.push_back(app.PreparePut("taken", "new", /*require_absent=*/true));
  std::vector<Status> outcomes = db->UpdateMany(prepares);

  ASSERT_EQ(outcomes.size(), prepares.size());
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(outcomes[static_cast<std::size_t>(i)].ok()) << i;
  }
  EXPECT_TRUE(outcomes.back().Is(ErrorCode::kFailedPrecondition)) << outcomes.back();
  EXPECT_EQ(app.state.at("taken"), "old");  // the failed update did not apply
  EXPECT_EQ(app.state.size(), 17u);

  // 16 committed records on (nearly) one fsync: the single-threaded caller enqueued
  // them under one lock acquisition, so one seal caught them all.
  DatabaseStats stats = db->stats();
  EXPECT_EQ(stats.group_commit.records_committed, 17u);
  EXPECT_LE(stats.group_commit.syncs - syncs_before, 2u);

  // Every acknowledged update (and no unacknowledged one) survives a reopen.
  db.reset();
  TestApp recovered;
  auto reopened = Database::Open(recovered, BaseOptions(env, env.fs()));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(recovered.state, app.state);
}

TEST(GroupCommitTest, UpdateManySerialFallbackKeepsOutcomesIndependent) {
  // With the pipeline off, UpdateMany degrades to one commit per update — outcomes
  // stay independent, just without the shared fsync.
  SimEnv env = MakeEnv();
  TestApp app;
  DatabaseOptions options = BaseOptions(env, env.fs());
  options.group_commit.enabled = false;
  auto db_or = Database::Open(app, options);
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  ASSERT_TRUE(db->Update(app.PreparePut("taken", "old")).ok());
  std::vector<Status> outcomes = db->UpdateMany(
      {app.PreparePut("a", "1"),
       app.PreparePut("taken", "clobber", /*require_absent=*/true),
       app.PreparePut("b", "2")});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].Is(ErrorCode::kFailedPrecondition));
  EXPECT_TRUE(outcomes[2].ok());
  EXPECT_EQ(app.state.at("taken"), "old");
  EXPECT_EQ(db->log_writer_stats().commits, 3u);  // one per successful update
}

TEST(GroupCommitTest, ConcurrentUpdateManyCallersCoalesceAcrossBatches) {
  // Several transport threads, each carrying its own ingest batch, still coalesce
  // onto shared fsyncs — the many-sockets-one-fsync claim, engine side.
  SimEnv env = MakeEnv();
  SyncHookFs fs(env.fs());
  std::atomic<bool> armed{false};
  fs.set_hook([&armed] {
    if (armed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  TestApp app;
  auto db_or = Database::Open(app, BaseOptions(env, fs));
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);
  armed.store(true);

  std::vector<std::thread> carriers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    carriers.emplace_back([&, t] {
      std::vector<std::function<Result<Bytes>()>> prepares;
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        prepares.push_back(app.PreparePut(key, "v-" + key));
      }
      for (const Status& status : db->UpdateMany(prepares)) {
        if (!status.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& carrier : carriers) {
    carrier.join();
  }
  armed.store(false);
  ASSERT_EQ(failures.load(), 0);

  DatabaseStats stats = db->stats();
  EXPECT_EQ(stats.group_commit.records_committed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_LT(stats.group_commit.syncs, stats.group_commit.records_committed);
  EXPECT_GT(stats.group_commit.records_per_sync(), 1.0);
  EXPECT_EQ(app.state.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(GroupCommitTest, ConcurrentNameServerSetsMintGapFreeSequences) {
  SimEnv env = MakeEnv();
  SyncHookFs fs(env.fs());
  std::atomic<bool> armed{false};
  fs.set_hook([&armed] {
    if (armed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  constexpr std::uint64_t kTotal = kThreads * kPerThread;

  ns::NameServerOptions options;
  options.db.vfs = &fs;
  options.db.dir = "ns";
  options.db.clock = &env.clock();
  options.replica_id = "replica-1";

  {
    auto server_or = ns::NameServer::Open(options);
    ASSERT_TRUE(server_or.ok()) << server_or.status();
    std::unique_ptr<ns::NameServer> server = std::move(*server_or);
    armed.store(true);

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string path = "t" + std::to_string(t) + "/k" + std::to_string(i);
          ASSERT_TRUE(server->Set(path, "v" + std::to_string(i)).ok());
        }
      });
    }
    for (std::thread& w : writers) {
      w.join();
    }
    armed.store(false);

    // Sequence numbers must be exactly 1..kTotal with no duplicates and no gaps,
    // even though many prepares shared a commit batch and thus could not see each
    // other's version-vector advances (the reservation overlay covers them).
    ns::VersionVector vv = server->version_vector();
    EXPECT_EQ(vv["replica-1"], kTotal);
    auto updates_or = server->UpdatesSince({});
    ASSERT_TRUE(updates_or.ok()) << updates_or.status();
    ASSERT_EQ(updates_or->size(), kTotal);
    std::set<std::uint64_t> sequences;
    std::set<std::uint64_t> lamports;
    for (const ns::NameServerUpdate& update : *updates_or) {
      EXPECT_EQ(update.origin, "replica-1");
      sequences.insert(update.sequence);
      lamports.insert(update.lamport);
    }
    EXPECT_EQ(sequences.size(), kTotal);
    EXPECT_EQ(*sequences.begin(), 1u);
    EXPECT_EQ(*sequences.rbegin(), kTotal);
    EXPECT_EQ(lamports.size(), kTotal);  // lamport is strictly increasing locally

    DatabaseStats stats = server->database().stats();
    EXPECT_LT(stats.group_commit.syncs, stats.group_commit.records_committed);
  }

  // The replication bookkeeping recovers intact from the log.
  options.db.vfs = &env.fs();
  auto reopened_or = ns::NameServer::Open(options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status();
  std::unique_ptr<ns::NameServer> reopened = std::move(*reopened_or);
  EXPECT_EQ(reopened->version_vector()["replica-1"], kTotal);
  auto value = reopened->Lookup("t0/k0");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(*value, "v0");
}

}  // namespace
}  // namespace sdb
