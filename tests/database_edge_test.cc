// Edge-case tests for the engine: cross-application checkpoint mismatch, enquiry
// error propagation, stats accounting, unpadded-log hazards, and reopen cycles.
#include <gtest/gtest.h>

#include "src/baselines/smalldb_kv.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class DatabaseEdgeTest : public ::testing::Test {
 protected:
  DatabaseEdgeTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  DatabaseOptions Options(std::string dir = "db") {
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = std::move(dir);
    options.clock = &env_->clock();
    return options;
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(DatabaseEdgeTest, OpeningWithWrongApplicationTypeFails) {
  // A checkpoint written by one application cannot be loaded by another: the pickle
  // envelope's type name catches the mismatch.
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto wrong = baselines::SmallDbKv::Open(Options());
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().Is(ErrorCode::kCorruption));
}

TEST_F(DatabaseEdgeTest, EnquiryErrorsPropagateWithoutSideEffects) {
  TestApp app;
  auto db = *Database::Open(app, Options());
  Status status = db->Enquire([] { return NotFoundError("looked for something"); });
  EXPECT_TRUE(status.Is(ErrorCode::kNotFound));
  // The lock was released despite the error: updates still work.
  EXPECT_TRUE(db->Update(app.PreparePut("still", "works")).ok());
}

TEST_F(DatabaseEdgeTest, StatsCountEveryOutcome) {
  TestApp app;
  auto db = *Database::Open(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(app.PreparePut("a", "2", /*require_absent=*/true))
                  .Is(ErrorCode::kFailedPrecondition));
  ASSERT_TRUE(db->Enquire([] { return OkStatus(); }).ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  DatabaseStats stats = db->stats();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.update_precondition_failures, 1u);
  EXPECT_EQ(stats.enquiries, 1u);
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.log_entries_since_checkpoint, 0u);
}

TEST_F(DatabaseEdgeTest, ManyReopenCyclesAccumulateNothingStray) {
  std::map<std::string, std::string> expected;
  for (int cycle = 0; cycle < 8; ++cycle) {
    TestApp app;
    auto db = *Database::Open(app, Options());
    EXPECT_EQ(app.state, expected);
    std::string key = "cycle" + std::to_string(cycle);
    ASSERT_TRUE(db->Update(app.PreparePut(key, "done")).ok());
    expected[key] = "done";
    if (cycle % 3 == 1) {
      ASSERT_TRUE(db->Checkpoint().ok());
    }
    db.reset();
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }
  // The directory contains exactly one generation's files plus `version`.
  auto names = *env_->fs().List("db");
  EXPECT_EQ(names.size(), 3u) << "stray files accumulated";
}

TEST_F(DatabaseEdgeTest, LargeUpdateRecordsSpanManyLogPages) {
  TestApp app;
  auto db = *Database::Open(app, Options());
  std::string huge(100'000, 'H');
  ASSERT_TRUE(db->Update(app.PreparePut("huge", huge)).ok());
  db.reset();
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  TestApp recovered;
  auto db2 = *Database::Open(recovered, Options());
  EXPECT_EQ(recovered.state["huge"], huge);
  (void)db2;
}

TEST_F(DatabaseEdgeTest, UnpaddedLogTornTailCanDamageCommittedData) {
  // Negative demonstration: with pad_to_page_boundary disabled, a torn rewrite of the
  // log's shared tail page can take a previously committed entry with it. This is why
  // padding is the default (and why the crash matrix passes at 100%).
  DatabaseOptions options = Options();
  options.log_writer.pad_to_page_boundary = false;
  TestApp app;
  {
    auto db = *Database::Open(app, options);
    ASSERT_TRUE(db->Update(app.PreparePut("committed", "small")).ok());
    CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Update(app.PreparePut("torn", "x")).ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  TestApp recovered;
  auto db = Database::Open(recovered, options);
  // Either recovery fails (the shared page is unreadable) or the committed update is
  // gone — both are failures the padded default prevents.
  bool committed_survived = db.ok() && recovered.state.count("committed") == 1;
  EXPECT_FALSE(committed_survived)
      << "expected the unpadded configuration to exhibit the hazard";
}

TEST_F(DatabaseEdgeTest, EmptyValueAndKeyEdgeCases) {
  TestApp app;
  auto db = *Database::Open(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("", "empty key")).ok());
  ASSERT_TRUE(db->Update(app.PreparePut("empty value", "")).ok());
  db.reset();
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  TestApp recovered;
  auto db2 = *Database::Open(recovered, Options());
  EXPECT_EQ(recovered.state[""], "empty key");
  EXPECT_EQ(recovered.state["empty value"], "");
  (void)db2;
}

TEST_F(DatabaseEdgeTest, CheckpointWithEmptyStateAndEmptyLog) {
  TestApp app;
  auto db = *Database::Open(app, Options());
  // Checkpointing an untouched database is legal and idempotent.
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(db->current_version(), 3u);
  db.reset();
  TestApp recovered;
  auto db2 = *Database::Open(recovered, Options());
  EXPECT_TRUE(recovered.state.empty());
  (void)db2;
}

TEST_F(DatabaseEdgeTest, ReadOnlyOpenRecoversWithoutSideEffects) {
  TestApp app;
  {
    auto db = *Database::Open(app, Options());
    ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  }
  // Fabricate an interrupted switch: a read-only open must neither finish nor clean it.
  ASSERT_TRUE(WriteWholeFile(env_->fs(), "db/checkpoint9.tmp", ByteSpan{}).ok());
  ASSERT_TRUE(env_->fs().SyncDir("db").ok());

  TestApp reader;
  auto ro = Database::OpenReadOnly(reader, Options());
  ASSERT_TRUE(ro.ok()) << ro.status();
  EXPECT_EQ(reader.state["k"], "v");
  EXPECT_EQ((*ro)->current_version(), 1u);

  // Enquiries work; every mutation is refused.
  EXPECT_TRUE((*ro)->Enquire([] { return OkStatus(); }).ok());
  EXPECT_TRUE((*ro)->Update(reader.PreparePut("x", "y")).Is(ErrorCode::kFailedPrecondition));
  EXPECT_TRUE((*ro)->Checkpoint().Is(ErrorCode::kFailedPrecondition));
  EXPECT_TRUE((*ro)->ReplaceState(ByteSpan{}).Is(ErrorCode::kFailedPrecondition));

  // No side effects: the stray file is still there (a writable open would delete it).
  EXPECT_TRUE(*env_->fs().Exists("db/checkpoint9.tmp"));
  EXPECT_EQ(reader.state.count("x"), 0u);
}

TEST_F(DatabaseEdgeTest, ReadOnlyOpenOfMissingDatabaseFails) {
  TestApp app;
  EXPECT_FALSE(Database::OpenReadOnly(app, Options("empty")).ok());
}

TEST_F(DatabaseEdgeTest, DiskFullSurfacesCleanly) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  env_options.disk.capacity_pages = 24;  // tiny disk
  SimEnv env(env_options);
  TestApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    EXPECT_TRUE(db_or.status().Is(ErrorCode::kOutOfSpace));
    return;
  }
  auto db = std::move(*db_or);
  Status last = OkStatus();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    last = db->Update(app.PreparePut("k" + std::to_string(i), std::string(400, 'x')));
  }
  EXPECT_TRUE(last.Is(ErrorCode::kOutOfSpace)) << last;
  // Enquiries still serve from memory even when the disk is full.
  EXPECT_TRUE(db->Enquire([] { return OkStatus(); }).ok());
}

}  // namespace
}  // namespace sdb
