// End-to-end integration: the full stack (name server on the engine on the simulated
// disk, RPC clients, replication) run through a simulated day of the paper's target
// workload, with crashes, checkpoints and recovery along the way.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/audit.h"
#include "src/nameserver/replication.h"
#include "src/storage/sim_env.h"

namespace sdb {
namespace {

using ns::NameServer;
using ns::NameServerOptions;

TEST(IntegrationTest, SimulatedDayWithNightlyCheckpoint) {
  // The paper's target: bursts up to 10 updates/s, up to ~10k updates/day, one nightly
  // checkpoint. Compressed here: 600 updates with periodic enquiries, one checkpoint,
  // then a crash and a restart that must replay only the post-checkpoint tail.
  SimEnvOptions env_options;
  SimEnv env(env_options);

  NameServerOptions options;
  options.db.vfs = &env.fs();
  options.db.dir = "ns";
  options.db.clock = &env.clock();
  options.cost = &env.cost_model();
  options.replica_id = "day";

  Rng rng(2024);
  std::map<std::string, std::string> model;  // reference model of expected state

  {
    auto server = *NameServer::Open(options);
    // Morning + afternoon: 400 updates.
    for (int i = 0; i < 400; ++i) {
      std::string path = "users/u" + std::to_string(rng.NextBelow(120));
      std::string value = rng.NextString(24);
      ASSERT_TRUE(server->Set(path, value).ok());
      model[path] = value;
      if (i % 10 == 0) {
        // Interleaved enquiries never touch the disk.
        std::string probe = "users/u" + std::to_string(rng.NextBelow(120));
        Result<std::string> got = server->Lookup(probe);
        if (model.count(probe) != 0) {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, model[probe]);
        } else {
          EXPECT_TRUE(got.status().Is(ErrorCode::kNotFound));
        }
      }
    }
    // Night: checkpoint.
    ASSERT_TRUE(server->Checkpoint().ok());
    // Next morning: 200 more updates.
    for (int i = 0; i < 200; ++i) {
      std::string path = "users/u" + std::to_string(rng.NextBelow(120));
      std::string value = rng.NextString(24);
      ASSERT_TRUE(server->Set(path, value).ok());
      model[path] = value;
    }
  }

  // Power failure, then restart.
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  auto server = *NameServer::Open(options);
  EXPECT_EQ(server->database().stats().restart.entries_replayed, 200u);

  // Every binding matches the reference model.
  for (const auto& [path, value] : model) {
    Result<std::string> got = server->Lookup(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(*got, value) << path;
  }
}

TEST(IntegrationTest, ReplicatedClusterSurvivesReplicaLoss) {
  // Two replicas propagate continuously; one suffers a hard error and is restored from
  // the other; convergence holds throughout.
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  auto make_server = [&](int i) {
    NameServerOptions options;
    options.db.vfs = &env.fs();
    options.db.dir = "replica" + std::to_string(i);
    options.db.clock = &env.clock();
    options.replica_id = "r" + std::to_string(i);
    return *NameServer::Open(options);
  };
  auto s0 = make_server(0);
  auto s1 = make_server(1);
  rpc::RpcServer rpc0, rpc1;
  RegisterNameService(rpc0, *s0);
  RegisterNameService(rpc1, *s1);
  rpc::LoopbackChannel to1(rpc1, {&env.clock(), 8000});
  rpc::LoopbackChannel to0(rpc0, {&env.clock(), 8000});
  ns::Replicator rep0(*s0), rep1(*s1);
  rep0.AddPeer("r1", to1);
  rep1.AddPeer("r0", to0);

  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 5; ++i) {
      NameServer& writer = rng.NextBool(0.5) ? *s0 : *s1;
      ASSERT_TRUE(
          writer.Set("cfg/item" + std::to_string(rng.NextBelow(30)), rng.NextString(12)).ok());
    }
    ASSERT_TRUE(rep0.Propagate().ok());
    ASSERT_TRUE(rep1.Propagate().ok());
  }
  // Converged?
  std::vector<std::string> labels = *s0->List("cfg");
  for (const std::string& label : labels) {
    EXPECT_EQ(*s0->Lookup("cfg/" + label), *s1->Lookup("cfg/" + label));
  }

  // Replica 0 is destroyed and restored from replica 1.
  ASSERT_TRUE(rep0.RestoreFromPeer("r1").ok());
  labels = *s1->List("cfg");
  for (const std::string& label : labels) {
    EXPECT_EQ(*s0->Lookup("cfg/" + label), *s1->Lookup("cfg/" + label));
  }
  // And the restored replica keeps serving updates.
  ASSERT_TRUE(s0->Set("cfg/post", "restore").ok());
  ASSERT_TRUE(rep0.Propagate().ok());
  EXPECT_EQ(*s1->Lookup("cfg/post"), "restore");
}

TEST(IntegrationTest, AuditTrailMatchesAppliedUpdates) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  NameServerOptions options;
  options.db.vfs = &env.fs();
  options.db.dir = "ns";
  options.replica_id = "audit";
  auto server = *NameServer::Open(options);
  ASSERT_TRUE(server->Set("a", "1").ok());
  ASSERT_TRUE(server->Set("b", "2").ok());
  ASSERT_TRUE(server->Remove("a").ok());

  // The log is a complete audit trail (paper Section 4).
  std::string log_path = "ns/logfile" + std::to_string(server->database().current_version());
  auto trail = *ReadAuditTrail(env.fs(), log_path);
  ASSERT_EQ(trail.size(), 3u);
  auto first = *ns::DecodeUpdate(AsSpan(trail[0].record));
  auto third = *ns::DecodeUpdate(AsSpan(trail[2].record));
  EXPECT_EQ(first.path, "a");
  EXPECT_EQ(first.kind, static_cast<std::uint8_t>(ns::UpdateKind::kSet));
  EXPECT_EQ(third.path, "a");
  EXPECT_EQ(third.kind, static_cast<std::uint8_t>(ns::UpdateKind::kRemove));
}

TEST(IntegrationTest, ConcurrentEnquiriesDuringUpdatesAreConsistent) {
  // Threaded smoke test of the SUE discipline end to end: readers never observe a
  // torn in-memory state (every key they find has its full value).
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  NameServerOptions options;
  options.db.vfs = &env.fs();
  options.db.dir = "ns";
  options.replica_id = "mt";
  auto server = *NameServer::Open(options);

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      Result<std::string> value = server->Lookup("hot/key");
      if (value.ok() && value->substr(0, 6) != "value-") {
        reader_errors.fetch_add(1);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(server->Set("hot/key", "value-" + std::to_string(i)).ok());
  }
  stop = true;
  reader.join();
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(*server->Lookup("hot/key"), "value-199");
}

}  // namespace
}  // namespace sdb
