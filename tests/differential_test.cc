// Differential testing: all four KvDatabase implementations (the paper's design and
// the three Section 2 baselines) run the same random operation stream and must agree
// with each other and with a reference model at every step — including across a
// clean restart.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "src/baselines/adhoc_page_db.h"
#include "src/baselines/smalldb_kv.h"
#include "src/baselines/textfile_db.h"
#include "src/baselines/wal_commit_db.h"
#include "src/common/rng.h"
#include "src/sim/kv_app.h"
#include "src/sim/workload.h"
#include "src/storage/posix_fs.h"
#include "src/storage/sim_env.h"

namespace sdb::baselines {
namespace {

struct Impl {
  std::string name;
  std::unique_ptr<KvDatabase> db;
};

std::vector<Impl> OpenAll(SimEnv& env) {
  std::vector<Impl> impls;
  impls.push_back({"textfile", std::move(*TextFileDb::Open(env.fs(), "d-text"))});
  impls.push_back({"adhoc", std::move(*AdHocPageDb::Open(env.fs(), "d-adhoc"))});
  impls.push_back({"walcommit", std::move(*WalCommitDb::Open(env.fs(), "d-wal"))});
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "d-smalldb";
  options.checkpoint_policy.every_n_updates = 37;
  impls.push_back({"smalldb", std::move(*SmallDbKv::Open(options))});
  return impls;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, AllImplementationsAgreeOnRandomStreams) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  Rng rng(GetParam());
  std::map<std::string, std::string> model;

  {
    std::vector<Impl> impls = OpenAll(env);
    for (int op = 0; op < 150; ++op) {
      std::string key = "key" + std::to_string(rng.NextBelow(15));
      double dice = rng.NextDouble();
      if (dice < 0.55) {  // Put (values up to multi-slot size)
        std::string value = rng.NextString(1 + rng.NextBelow(600));
        for (Impl& impl : impls) {
          ASSERT_TRUE(impl.db->Put(key, value).ok()) << impl.name << " put " << key;
        }
        model[key] = value;
      } else if (dice < 0.75) {  // Delete
        bool expect_ok = model.count(key) != 0;
        for (Impl& impl : impls) {
          Status status = impl.db->Delete(key);
          EXPECT_EQ(status.ok(), expect_ok) << impl.name << " delete " << key;
        }
        model.erase(key);
      } else {  // Get + spot agreement
        for (Impl& impl : impls) {
          Result<std::string> value = impl.db->Get(key);
          if (model.count(key) != 0) {
            ASSERT_TRUE(value.ok()) << impl.name << " get " << key;
            EXPECT_EQ(*value, model[key]) << impl.name << " get " << key;
          } else {
            EXPECT_TRUE(value.status().Is(ErrorCode::kNotFound)) << impl.name;
          }
        }
      }
    }
    // Full-state agreement before restart.
    for (Impl& impl : impls) {
      auto keys = *impl.db->Keys();
      ASSERT_EQ(keys.size(), model.size()) << impl.name;
      for (const std::string& key : keys) {
        EXPECT_EQ(*impl.db->Get(key), model[key]) << impl.name << "/" << key;
      }
      EXPECT_TRUE(impl.db->Verify().ok()) << impl.name;
    }
  }

  // Clean restart (power cut with everything synced): all four recover identically.
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  std::vector<Impl> reopened = OpenAll(env);
  for (Impl& impl : reopened) {
    auto keys = *impl.db->Keys();
    ASSERT_EQ(keys.size(), model.size()) << impl.name << " after restart";
    for (const auto& [key, value] : model) {
      auto got = impl.db->Get(key);
      ASSERT_TRUE(got.ok()) << impl.name << "/" << key << " after restart";
      EXPECT_EQ(*got, value) << impl.name << "/" << key << " after restart";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range<std::uint64_t>(900, 910));

// --- harness-workload differential: simulated vs real file system ---
//
// The same harness-generated workload (no faults) is executed by the real engine on
// SimFs and on PosixFs. After a clean restart both must recover the same state, byte
// for byte in the serialized snapshot — pinning the engine's durable behaviour on the
// simulated disk to its behaviour on the host file system.

// Runs the update/checkpoint/restart steps of `steps` against a fresh database in
// `dir` on `fs`, restarts, and returns the recovered snapshot's serialized bytes.
// Enquiry and backup steps are skipped: with no faults and no oracle attached they
// have no observable effect on the durable state under comparison.
void RunHarnessWorkload(Vfs& fs, const std::string& dir,
                        const std::vector<sim::WorkloadStep>& steps,
                        Bytes* snapshot_out,
                        std::map<std::string, std::string>* state_out) {
  sim::KvApp app;
  DatabaseOptions options;
  options.vfs = &fs;
  options.dir = dir;

  auto db_or = Database::Open(app, options);
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  std::unique_ptr<Database> db = std::move(*db_or);

  for (const sim::WorkloadStep& step : steps) {
    switch (step.kind) {
      case sim::StepKind::kPut:
        ASSERT_TRUE(db->Update(app.PreparePut(step.key, step.value)).ok())
            << sim::StepToString(step);
        break;
      case sim::StepKind::kDelete:
        ASSERT_TRUE(db->Update(app.PrepareDelete(step.key)).ok())
            << sim::StepToString(step);
        break;
      case sim::StepKind::kCheckpoint:
        ASSERT_TRUE(db->Checkpoint().ok()) << sim::StepToString(step);
        break;
      case sim::StepKind::kRestart: {
        db.reset();
        auto reopened = Database::Open(app, options);
        ASSERT_TRUE(reopened.ok()) << reopened.status();
        db = std::move(*reopened);
        break;
      }
      case sim::StepKind::kLookup:
      case sim::StepKind::kEnumerate:
      case sim::StepKind::kBackup:
        break;
    }
  }

  // Clean restart, then capture the recovered snapshot.
  db.reset();
  sim::KvApp recovered;
  auto final_db = Database::Open(recovered, options);
  ASSERT_TRUE(final_db.ok()) << final_db.status();
  auto serialized = recovered.SerializeState();
  ASSERT_TRUE(serialized.ok()) << serialized.status();
  *snapshot_out = std::move(*serialized);
  *state_out = recovered.state;
}

class HarnessWorkloadDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarnessWorkloadDifferentialTest, SimFsAndPosixFsRecoverIdenticalSnapshots) {
  sim::WorkloadOptions workload_options;
  workload_options.steps = 80;
  std::vector<sim::WorkloadStep> steps =
      sim::GenerateWorkload(GetParam(), workload_options);

  Bytes sim_snapshot;
  std::map<std::string, std::string> sim_state;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    RunHarnessWorkload(env.fs(), "db", steps, &sim_snapshot, &sim_state);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  Bytes posix_snapshot;
  std::map<std::string, std::string> posix_state;
  {
    std::filesystem::path root =
        std::filesystem::temp_directory_path() /
        ("sdb_diff_harness_" + std::to_string(::getpid()) + "_" +
         std::to_string(GetParam()));
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    PosixFs posix_fs(root.string());
    RunHarnessWorkload(posix_fs, "db", steps, &posix_snapshot, &posix_state);
    std::filesystem::remove_all(root);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }

  EXPECT_EQ(sim_state, posix_state);
  ASSERT_EQ(sim_snapshot.size(), posix_snapshot.size());
  EXPECT_TRUE(std::equal(sim_snapshot.begin(), sim_snapshot.end(),
                         posix_snapshot.begin()))
      << "recovered snapshots differ between SimFs and PosixFs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarnessWorkloadDifferentialTest,
                         ::testing::Values(7001, 7002, 7003));

}  // namespace
}  // namespace sdb::baselines
