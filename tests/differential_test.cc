// Differential testing: all four KvDatabase implementations (the paper's design and
// the three Section 2 baselines) run the same random operation stream and must agree
// with each other and with a reference model at every step — including across a
// clean restart.
#include <gtest/gtest.h>

#include "src/baselines/adhoc_page_db.h"
#include "src/baselines/smalldb_kv.h"
#include "src/baselines/textfile_db.h"
#include "src/baselines/wal_commit_db.h"
#include "src/common/rng.h"
#include "src/storage/sim_env.h"

namespace sdb::baselines {
namespace {

struct Impl {
  std::string name;
  std::unique_ptr<KvDatabase> db;
};

std::vector<Impl> OpenAll(SimEnv& env) {
  std::vector<Impl> impls;
  impls.push_back({"textfile", std::move(*TextFileDb::Open(env.fs(), "d-text"))});
  impls.push_back({"adhoc", std::move(*AdHocPageDb::Open(env.fs(), "d-adhoc"))});
  impls.push_back({"walcommit", std::move(*WalCommitDb::Open(env.fs(), "d-wal"))});
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "d-smalldb";
  options.checkpoint_policy.every_n_updates = 37;
  impls.push_back({"smalldb", std::move(*SmallDbKv::Open(options))});
  return impls;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, AllImplementationsAgreeOnRandomStreams) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  Rng rng(GetParam());
  std::map<std::string, std::string> model;

  {
    std::vector<Impl> impls = OpenAll(env);
    for (int op = 0; op < 150; ++op) {
      std::string key = "key" + std::to_string(rng.NextBelow(15));
      double dice = rng.NextDouble();
      if (dice < 0.55) {  // Put (values up to multi-slot size)
        std::string value = rng.NextString(1 + rng.NextBelow(600));
        for (Impl& impl : impls) {
          ASSERT_TRUE(impl.db->Put(key, value).ok()) << impl.name << " put " << key;
        }
        model[key] = value;
      } else if (dice < 0.75) {  // Delete
        bool expect_ok = model.count(key) != 0;
        for (Impl& impl : impls) {
          Status status = impl.db->Delete(key);
          EXPECT_EQ(status.ok(), expect_ok) << impl.name << " delete " << key;
        }
        model.erase(key);
      } else {  // Get + spot agreement
        for (Impl& impl : impls) {
          Result<std::string> value = impl.db->Get(key);
          if (model.count(key) != 0) {
            ASSERT_TRUE(value.ok()) << impl.name << " get " << key;
            EXPECT_EQ(*value, model[key]) << impl.name << " get " << key;
          } else {
            EXPECT_TRUE(value.status().Is(ErrorCode::kNotFound)) << impl.name;
          }
        }
      }
    }
    // Full-state agreement before restart.
    for (Impl& impl : impls) {
      auto keys = *impl.db->Keys();
      ASSERT_EQ(keys.size(), model.size()) << impl.name;
      for (const std::string& key : keys) {
        EXPECT_EQ(*impl.db->Get(key), model[key]) << impl.name << "/" << key;
      }
      EXPECT_TRUE(impl.db->Verify().ok()) << impl.name;
    }
  }

  // Clean restart (power cut with everything synced): all four recover identically.
  env.fs().Crash();
  ASSERT_TRUE(env.fs().Recover().ok());
  std::vector<Impl> reopened = OpenAll(env);
  for (Impl& impl : reopened) {
    auto keys = *impl.db->Keys();
    ASSERT_EQ(keys.size(), model.size()) << impl.name << " after restart";
    for (const auto& [key, value] : model) {
      auto got = impl.db->Get(key);
      ASSERT_TRUE(got.ok()) << impl.name << "/" << key << " after restart";
      EXPECT_EQ(*got, value) << impl.name << "/" << key << " after restart";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range<std::uint64_t>(900, 910));

}  // namespace
}  // namespace sdb::baselines
