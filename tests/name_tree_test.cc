// Tests for NameTree: path handling, tree operations, LWW stamps, serialization.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nameserver/name_tree.h"

namespace sdb::ns {
namespace {

VersionStamp Stamp(std::uint64_t lamport, std::string origin = "r1") {
  return VersionStamp{lamport, std::move(origin)};
}

TEST(SplitPathTest, Basics) {
  EXPECT_TRUE(SplitPath("")->empty());
  EXPECT_EQ(*SplitPath("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(*SplitPath("a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitPathTest, RejectsMalformedPaths) {
  EXPECT_FALSE(SplitPath("/a").ok());
  EXPECT_FALSE(SplitPath("a/").ok());
  EXPECT_FALSE(SplitPath("a//b").ok());
  EXPECT_FALSE(SplitPath("/").ok());
}

TEST(VersionStampTest, TotalOrder) {
  EXPECT_TRUE(Stamp(1) < Stamp(2));
  EXPECT_TRUE(Stamp(1, "a") < Stamp(1, "b"));
  EXPECT_FALSE(Stamp(1, "a") < Stamp(1, "a"));
  EXPECT_FALSE(Stamp(2) < Stamp(1));
}

class NameTreeTest : public ::testing::Test {
 protected:
  NameTree tree_;
};

TEST_F(NameTreeTest, SetAndLookup) {
  ASSERT_TRUE(*tree_.Set("host/alpha", "10.0.0.1", Stamp(1)));
  EXPECT_EQ(*tree_.Lookup("host/alpha"), "10.0.0.1");
}

TEST_F(NameTreeTest, LookupMissingIsNotFound) {
  EXPECT_TRUE(tree_.Lookup("nope").status().Is(ErrorCode::kNotFound));
}

TEST_F(NameTreeTest, IntermediateNodesHaveNoValue) {
  ASSERT_TRUE(*tree_.Set("a/b/c", "v", Stamp(1)));
  EXPECT_TRUE(tree_.Exists("a/b"));
  EXPECT_TRUE(tree_.Lookup("a/b").status().Is(ErrorCode::kNotFound));
}

TEST_F(NameTreeTest, ListChildrenSorted) {
  ASSERT_TRUE(*tree_.Set("dir/zeta", "1", Stamp(1)));
  ASSERT_TRUE(*tree_.Set("dir/alpha", "2", Stamp(2)));
  ASSERT_TRUE(*tree_.Set("dir/mid", "3", Stamp(3)));
  EXPECT_EQ(*tree_.List("dir"), (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_EQ(*tree_.List(""), (std::vector<std::string>{"dir"}));
}

TEST_F(NameTreeTest, ListMissingPathFails) {
  EXPECT_TRUE(tree_.List("ghost").status().Is(ErrorCode::kNotFound));
}

TEST_F(NameTreeTest, SetOnRootRejected) {
  EXPECT_TRUE(tree_.Set("", "v", Stamp(1)).status().Is(ErrorCode::kInvalidArgument));
}

TEST_F(NameTreeTest, OverwriteNeedsNewerStamp) {
  ASSERT_TRUE(*tree_.Set("k", "first", Stamp(5)));
  // Older and equal stamps are superseded.
  EXPECT_FALSE(*tree_.Set("k", "stale", Stamp(4)));
  EXPECT_FALSE(*tree_.Set("k", "same", Stamp(5)));
  EXPECT_EQ(*tree_.Lookup("k"), "first");
  EXPECT_TRUE(*tree_.Set("k", "newer", Stamp(6)));
  EXPECT_EQ(*tree_.Lookup("k"), "newer");
}

TEST_F(NameTreeTest, OriginBreaksTies) {
  ASSERT_TRUE(*tree_.Set("k", "from-a", Stamp(5, "a")));
  EXPECT_TRUE(*tree_.Set("k", "from-b", Stamp(5, "b")));  // b > a at equal lamport
  EXPECT_EQ(*tree_.Lookup("k"), "from-b");
  EXPECT_FALSE(*tree_.Set("k", "from-a-again", Stamp(5, "a")));
}

TEST_F(NameTreeTest, RemoveDeletesWholeSubtree) {
  ASSERT_TRUE(*tree_.Set("svc/db/primary", "p", Stamp(1)));
  ASSERT_TRUE(*tree_.Set("svc/db/replica", "r", Stamp(2)));
  ASSERT_TRUE(*tree_.Set("svc/web", "w", Stamp(3)));
  ASSERT_TRUE(*tree_.Remove("svc/db", Stamp(4)));
  EXPECT_FALSE(tree_.Exists("svc/db"));
  EXPECT_FALSE(tree_.Exists("svc/db/primary"));
  EXPECT_EQ(*tree_.Lookup("svc/web"), "w");
}

TEST_F(NameTreeTest, RemoveMissingLeavesTombstone) {
  // Removing a name that does not exist locally still records the subtree tombstone
  // (replica convergence: the Remove may precede the Sets it supersedes).
  ASSERT_TRUE(*tree_.Remove("ghost", Stamp(5)));
  EXPECT_FALSE(tree_.Exists("ghost"));
  // An older Set cannot resurrect it; a newer one can.
  EXPECT_FALSE(*tree_.Set("ghost", "old", Stamp(4)));
  EXPECT_FALSE(tree_.Exists("ghost"));
  EXPECT_TRUE(*tree_.Set("ghost", "new", Stamp(6)));
  EXPECT_EQ(*tree_.Lookup("ghost"), "new");
}

TEST_F(NameTreeTest, SubtreeTombstoneBlocksOlderDescendantSets) {
  ASSERT_TRUE(*tree_.Remove("zone", Stamp(10)));
  EXPECT_FALSE(*tree_.Set("zone/deep/name", "stale", Stamp(9)));
  EXPECT_FALSE(tree_.Exists("zone/deep/name"));
  EXPECT_TRUE(*tree_.Set("zone/deep/name", "fresh", Stamp(11)));
  EXPECT_EQ(*tree_.Lookup("zone/deep/name"), "fresh");
}

TEST_F(NameTreeTest, NewerDescendantSurvivesSubtreeRemove) {
  ASSERT_TRUE(*tree_.Set("zone/old", "o", Stamp(1)));
  ASSERT_TRUE(*tree_.Set("zone/new", "n", Stamp(20)));
  ASSERT_TRUE(*tree_.Remove("zone", Stamp(10)));
  EXPECT_FALSE(tree_.Exists("zone/old"));
  EXPECT_EQ(*tree_.Lookup("zone/new"), "n");  // newer than the tombstone
}

TEST_F(NameTreeTest, RemoveGuardedByStamp) {
  ASSERT_TRUE(*tree_.Set("k", "v", Stamp(10)));
  // An older Remove records its tombstone (that is new information, so it reports a
  // change) but the newer value survives it.
  (void)*tree_.Remove("k", Stamp(9));
  EXPECT_TRUE(tree_.Exists("k"));
  EXPECT_EQ(*tree_.Lookup("k"), "v");
  // A newer Remove takes the binding out.
  EXPECT_TRUE(*tree_.Remove("k", Stamp(11)));
  EXPECT_FALSE(tree_.Exists("k"));
  // Replaying the older Remove afterwards changes nothing.
  EXPECT_FALSE(*tree_.Remove("k", Stamp(9)));
}

TEST_F(NameTreeTest, SerializeDeserializeRoundTrip) {
  ASSERT_TRUE(*tree_.Set("a/b", "1", Stamp(1)));
  ASSERT_TRUE(*tree_.Set("a/c", "2", Stamp(2)));
  ASSERT_TRUE(*tree_.Set("d", "3", Stamp(3)));
  Bytes snapshot = *tree_.Serialize();

  NameTree other;
  ASSERT_TRUE(other.Deserialize(AsSpan(snapshot)).ok());
  EXPECT_EQ(*other.Lookup("a/b"), "1");
  EXPECT_EQ(*other.Lookup("a/c"), "2");
  EXPECT_EQ(*other.Lookup("d"), "3");
  // Stamps travel with the data: a stale write still loses after deserialize.
  EXPECT_FALSE(*other.Set("d", "stale", Stamp(2)));
}

TEST_F(NameTreeTest, DeserializeReplacesOldState) {
  ASSERT_TRUE(*tree_.Set("old", "x", Stamp(1)));
  NameTree donor;
  ASSERT_TRUE(*donor.Set("new", "y", Stamp(1)));
  Bytes snapshot = *donor.Serialize();
  ASSERT_TRUE(tree_.Deserialize(AsSpan(snapshot)).ok());
  EXPECT_FALSE(tree_.Exists("old"));
  EXPECT_EQ(*tree_.Lookup("new"), "y");
}

TEST_F(NameTreeTest, CorruptSnapshotRejected) {
  ASSERT_TRUE(*tree_.Set("a", "1", Stamp(1)));
  Bytes snapshot = *tree_.Serialize();
  snapshot[snapshot.size() / 2] ^= 0xFF;
  NameTree other;
  EXPECT_FALSE(other.Deserialize(AsSpan(snapshot)).ok());
}

TEST_F(NameTreeTest, ResetEmptiesTree) {
  ASSERT_TRUE(*tree_.Set("a", "1", Stamp(1)));
  ASSERT_TRUE(tree_.Reset().ok());
  EXPECT_FALSE(tree_.Exists("a"));
  EXPECT_TRUE(tree_.List("")->empty());
}

TEST_F(NameTreeTest, GarbageCollectionReclaimsRemovedSubtrees) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(*tree_.Set("big/sub" + std::to_string(i), "v", Stamp(i + 1)));
  }
  std::size_t populated = tree_.node_count();
  ASSERT_TRUE(*tree_.Remove("big", Stamp(1000)));
  tree_.CollectGarbage();
  EXPECT_LT(tree_.node_count(), populated / 2);
}

TEST_F(NameTreeTest, CostModelChargesExploreAndModify) {
  SimClock clock;
  CostModel model = CostModel::MicroVax(&clock);
  NameTree tree(&model);
  ASSERT_TRUE(*tree.Set("a/b/c", "v", Stamp(1)));
  Micros after_set = clock.NowMicros();
  EXPECT_GT(after_set, 0);
  ASSERT_TRUE(tree.Lookup("a/b/c").ok());
  // Three path components at ~1.6 ms each: about 5 ms, the paper's enquiry cost.
  Micros lookup_cost = clock.NowMicros() - after_set;
  EXPECT_NEAR(static_cast<double>(lookup_cost), 4800.0, 200.0);
}

TEST_F(NameTreeTest, ValuesWithArbitraryBytes) {
  std::string binary("\x00\x01\xFF\n\t", 5);
  ASSERT_TRUE(*tree_.Set("bin", binary, Stamp(1)));
  EXPECT_EQ(*tree_.Lookup("bin"), binary);
  Bytes snapshot = *tree_.Serialize();
  NameTree other;
  ASSERT_TRUE(other.Deserialize(AsSpan(snapshot)).ok());
  EXPECT_EQ(*other.Lookup("bin"), binary);
}

TEST_F(NameTreeTest, RandomOpsKeepLiveCountsAndHeapConsistent) {
  // Invariant check under random Set/Remove with monotonically increasing stamps:
  //   - live_bindings() always equals the number of bindings Export("") yields;
  //   - List(dir) shows exactly the children through which a live binding is reachable;
  //   - the heap always validates (no dangling references after pruning + GC).
  Rng rng(8086);
  std::uint64_t stamp = 0;
  for (int op = 0; op < 800; ++op) {
    std::string path = "s" + std::to_string(rng.NextBelow(4));
    int depth = static_cast<int>(rng.NextBelow(3));
    for (int d = 0; d < depth; ++d) {
      path += "/s" + std::to_string(rng.NextBelow(4));
    }
    if (rng.NextBool(0.7)) {
      ASSERT_TRUE(tree_.Set(path, rng.NextString(8), Stamp(++stamp)).ok());
    } else {
      ASSERT_TRUE(tree_.Remove(path, Stamp(++stamp)).ok());
    }
    if (op % 50 == 0) {
      auto all = *tree_.Export("");
      EXPECT_EQ(tree_.live_bindings(), all.size());
      ASSERT_TRUE(tree_.heap().Validate().ok());
    }
  }
  // Final full cross-check: every exported binding looks up; every listed child leads
  // to at least one binding.
  auto all = *tree_.Export("");
  EXPECT_EQ(tree_.live_bindings(), all.size());
  for (const auto& [path, value] : all) {
    EXPECT_EQ(*tree_.Lookup(path), value);
  }
  std::vector<std::string> roots = *tree_.List("");
  for (const std::string& label : roots) {
    EXPECT_FALSE(tree_.Export(label)->empty()) << label;
  }
  tree_.CollectGarbage();
  ASSERT_TRUE(tree_.heap().Validate().ok());
  EXPECT_EQ(tree_.live_bindings(), tree_.Export("")->size());
}

TEST_F(NameTreeTest, SerializeRoundTripPreservesTombstones) {
  ASSERT_TRUE(*tree_.Set("keep", "k", Stamp(5)));
  ASSERT_TRUE(*tree_.Remove("zone", Stamp(10)));
  Bytes snapshot = *tree_.Serialize();
  NameTree other;
  ASSERT_TRUE(other.Deserialize(AsSpan(snapshot)).ok());
  // The tombstone crossed the checkpoint: an older Set still loses.
  EXPECT_FALSE(*other.Set("zone/x", "stale", Stamp(9)));
  EXPECT_TRUE(*other.Set("zone/x", "fresh", Stamp(11)));
  EXPECT_EQ(other.live_bindings(), 2u);
}

class DeepTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepTreeTest, DeepPathsRoundTrip) {
  NameTree tree;
  std::string path = "n0";
  for (int i = 1; i < GetParam(); ++i) {
    path += "/n" + std::to_string(i);
  }
  ASSERT_TRUE(*tree.Set(path, "deep", VersionStamp{1, "r"}));
  EXPECT_EQ(*tree.Lookup(path), "deep");
  Bytes snapshot = *tree.Serialize();
  NameTree other;
  ASSERT_TRUE(other.Deserialize(AsSpan(snapshot)).ok());
  EXPECT_EQ(*other.Lookup(path), "deep");
}

INSTANTIATE_TEST_SUITE_P(Depths, DeepTreeTest, ::testing::Values(1, 2, 16, 128, 1024));

}  // namespace
}  // namespace sdb::ns
