// Tests for the observability layer: histogram bucket math and quantile error
// bounds, registry concurrency, trace-ring wraparound, and the Database integration
// contract that the per-stage commit breakdown accounts for the full update latency.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using obs::CommitStage;
using obs::CommitTrace;
using obs::Histogram;
using obs::HistogramSnapshot;
using ::sdb::testing::TestApp;

// Restores the process-wide timing switch no matter how a test exits.
class ScopedTiming {
 public:
  explicit ScopedTiming(bool enabled) { obs::SetTimingEnabled(enabled); }
  ~ScopedTiming() { obs::SetTimingEnabled(true); }
};

// --- bucket math ---

TEST(HistogramBuckets, SmallValuesGetUnitBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v + 1);
  }
}

TEST(HistogramBuckets, BoundsRoundTripThroughIndex) {
  for (std::size_t i = 0; i < Histogram::kBucketCount - 1; ++i) {
    std::uint64_t lower = Histogram::BucketLowerBound(i);
    std::uint64_t upper = Histogram::BucketUpperBound(i);
    ASSERT_LT(lower, upper) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(upper - 1), i) << "upper bound of bucket " << i;
    EXPECT_NE(Histogram::BucketIndex(upper), i) << "one past bucket " << i;
  }
}

TEST(HistogramBuckets, IndexIsMonotone) {
  std::size_t previous = 0;
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 44); v = v + v / 3 + 1) {
    std::size_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, previous) << "v=" << v;
    EXPECT_LT(index, Histogram::kBucketCount);
    previous = index;
  }
}

TEST(HistogramBuckets, OverflowBucketCatchesHugeValues) {
  const std::size_t last = Histogram::kBucketCount - 1;
  EXPECT_LT(Histogram::BucketIndex((std::uint64_t{1} << 40) - 1), last);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 40), last);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), last);
  EXPECT_EQ(Histogram::BucketLowerBound(last), std::uint64_t{1} << 40);
}

TEST(HistogramBuckets, BucketWidthBoundsRelativeError) {
  // The design claim: every finite bucket's width is at most 1/4 of its lower bound
  // (unit buckets aside), which is what bounds midpoint quantile error to 12.5%.
  for (std::size_t i = Histogram::kSubBuckets; i < Histogram::kBucketCount - 1; ++i) {
    std::uint64_t lower = Histogram::BucketLowerBound(i);
    std::uint64_t width = Histogram::BucketUpperBound(i) - lower;
    EXPECT_LE(width * 4, lower) << "bucket " << i;
  }
}

TEST(Histogram, CountSumMax) {
  Histogram h;
  h.Record(3);
  h.Record(100);
  h.Record(250000);
  h.Record(-7);  // clamped to 0
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 3u + 100u + 250000u);
  EXPECT_EQ(snap.max, 250000u);
}

TEST(Histogram, QuantileWithinErrorBound) {
  // A single recorded value: every quantile must land inside the bucket holding the
  // value, and the median — the bucket midpoint after interpolation — must be within
  // the advertised 12.5% relative error (plus 1 for the unit buckets).
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 38); v = v * 3 + 1) {
    Histogram h;
    h.Record(static_cast<std::int64_t>(v));
    HistogramSnapshot snap = h.Snapshot();
    std::size_t bucket = Histogram::BucketIndex(v);
    for (double q : {0.01, 0.5, 0.95, 0.99, 1.0}) {
      double estimate = snap.Quantile(q);
      EXPECT_GE(estimate, static_cast<double>(Histogram::BucketLowerBound(bucket)))
          << "v=" << v << " q=" << q;
      EXPECT_LE(estimate, static_cast<double>(Histogram::BucketUpperBound(bucket)))
          << "v=" << v << " q=" << q;
      EXPECT_LE(estimate, static_cast<double>(v) + 1.0) << "clamped to max+1";
    }
    double median_error = std::abs(snap.Quantile(0.5) - static_cast<double>(v));
    EXPECT_LE(median_error, 0.125 * static_cast<double>(v) + 1.0) << "v=" << v;
  }
}

TEST(Histogram, QuantilesOrderedOnMixedData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  HistogramSnapshot snap = h.Snapshot();
  double p50 = snap.p50(), p95 = snap.p95(), p99 = snap.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(snap.max) + 1);
  // True p50 is 500; the bucketed estimate must land within the error bound.
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.125 + 1.0);
  EXPECT_NEAR(p95, 950.0, 950.0 * 0.125 + 1.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0.0);
  EXPECT_EQ(h.Snapshot().mean(), 0.0);
}

// --- registry ---

TEST(Registry, SameNameReturnsSameMetric) {
  obs::Registry registry;
  obs::Counter& a = registry.GetCounter("x");
  obs::Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.FindCounter("x"), &a);
  EXPECT_EQ(registry.FindCounter("y"), nullptr);
}

TEST(Registry, ConcurrentRegistrationAndRecording) {
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("shared.counter").Increment();
        registry.GetHistogram("shared.hist").Record(i);
        registry.GetGauge("shared.gauge").Add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetHistogram("shared.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetGauge("shared.gauge").value(), kThreads * kIterations);
}

TEST(Registry, DumpsContainAllMetrics) {
  obs::Registry registry;
  registry.GetCounter("c.one").Add(7);
  registry.GetGauge("g.two").Set(-3);
  registry.GetHistogram("h.three").Record(42);
  std::string text = registry.DumpText();
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("g.two"), std::string::npos);
  EXPECT_NE(text.find("h.three"), std::string::npos);
  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"h.three\":{\"count\":1"), std::string::npos);
}

TEST(Registry, JsonStringEscaping) {
  std::string out;
  obs::AppendJsonString(out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

// --- trace ring ---

CommitTrace MakeTrace(std::uint64_t epoch) {
  CommitTrace trace;
  trace.epoch = epoch;
  trace.records = 1;
  trace.total_micros = static_cast<std::int64_t>(epoch) * 10;
  trace.set_stage(CommitStage::kFsync, static_cast<std::int64_t>(epoch));
  return trace;
}

TEST(TraceRing, KeepsMostRecentOldestFirst) {
  obs::TraceRing ring(4);
  for (std::uint64_t e = 1; e <= 10; ++e) {
    ring.Record(MakeTrace(e));
  }
  std::vector<CommitTrace> dump = ring.Dump();
  ASSERT_EQ(dump.size(), 4u);
  for (std::size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].epoch, 7 + i);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
}

TEST(TraceRing, PartiallyFilledDumpsInOrder) {
  obs::TraceRing ring(8);
  ring.Record(MakeTrace(1));
  ring.Record(MakeTrace(2));
  std::vector<CommitTrace> dump = ring.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].epoch, 1u);
  EXPECT_EQ(dump[1].epoch, 2u);
}

TEST(TraceRing, ZeroCapacityDropsEverything) {
  obs::TraceRing ring(0);
  ring.Record(MakeTrace(1));
  EXPECT_TRUE(ring.Dump().empty());
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(CommitTraceToString, NamesEveryStage) {
  std::string line = MakeTrace(5).ToString();
  EXPECT_NE(line.find("epoch=5"), std::string::npos);
  for (std::size_t i = 0; i < obs::kCommitStageCount; ++i) {
    EXPECT_NE(line.find(obs::CommitStageName(static_cast<CommitStage>(i))),
              std::string::npos);
  }
}

// --- database integration ---

class DatabaseObsTest : public ::testing::Test {
 protected:
  // Default SimEnv: the simulated disk charges seek/transfer time to the SimClock, so
  // stage timings are nonzero and fully deterministic.
  DatabaseObsTest() : env_(std::make_unique<SimEnv>()) {}

  DatabaseOptions Options() {
    DatabaseOptions options;
    options.vfs = &env_->fs();
    options.dir = "db";
    options.clock = &env_->clock();
    return options;
  }

  std::unique_ptr<SimEnv> env_;
};

// The acceptance contract: with a simulated clock, every microsecond of update
// latency is charged inside exactly one pipeline stage, so the per-stage sums add
// up to the externally measured end-to-end time.
TEST_F(DatabaseObsTest, StageBreakdownSumsToEndToEndLatency) {
  ScopedTiming timing(true);
  TestApp app;
  auto db = *Database::Open(app, Options());

  Micros t0 = env_->clock().NowMicros();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
  }
  Micros elapsed = env_->clock().NowMicros() - t0;
  ASSERT_GT(elapsed, 0);

  obs::Registry& registry = db->metrics();
  std::uint64_t stage_sum = 0;
  for (std::size_t i = 0; i < obs::kCommitStageCount; ++i) {
    CommitStage stage = static_cast<CommitStage>(i);
    if (stage == CommitStage::kAck) {
      continue;  // recorded per rider thread; no riders in a single-threaded test
    }
    const obs::Histogram* h = registry.FindHistogram(
        std::string("commit.stage.") + obs::CommitStageName(stage) + "_us");
    ASSERT_NE(h, nullptr);
    stage_sum += h->sum();
  }
  const obs::Histogram* total = registry.FindHistogram("commit.total_us");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 16u);
  EXPECT_EQ(total->sum(), static_cast<std::uint64_t>(elapsed));
  EXPECT_EQ(stage_sum, static_cast<std::uint64_t>(elapsed));

  // The dominant cost must be the commit fsync — the paper's 20ms log write.
  const obs::Histogram* fsync = registry.FindHistogram("commit.stage.fsync_us");
  ASSERT_NE(fsync, nullptr);
  EXPECT_GT(fsync->sum(), 0u);
}

TEST_F(DatabaseObsTest, SerialPathRecordsSameBreakdown) {
  ScopedTiming timing(true);
  TestApp app;
  DatabaseOptions options = Options();
  options.group_commit.enabled = false;
  auto db = *Database::Open(app, options);

  Micros t0 = env_->clock().NowMicros();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
  }
  Micros elapsed = env_->clock().NowMicros() - t0;
  ASSERT_GT(elapsed, 0);

  const obs::Histogram* total = db->metrics().FindHistogram("commit.total_us");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 8u);
  EXPECT_EQ(total->sum(), static_cast<std::uint64_t>(elapsed));
}

TEST_F(DatabaseObsTest, DumpTraceCarriesPerCommitEvents) {
  ScopedTiming timing(true);
  TestApp app;
  DatabaseOptions options = Options();
  options.trace_ring_capacity = 4;
  auto db = *Database::Open(app, options);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
  }
  std::vector<CommitTrace> traces = db->DumpTrace();
  ASSERT_EQ(traces.size(), 4u);  // ring capacity caps retention
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].records, 1u);
    EXPECT_GT(traces[i].total_micros, 0);
    if (i > 0) {
      EXPECT_GT(traces[i].epoch, traces[i - 1].epoch);  // oldest first
    }
  }
}

TEST_F(DatabaseObsTest, TraceRingCanBeDisabled) {
  TestApp app;
  DatabaseOptions options = Options();
  options.trace_ring_capacity = 0;
  auto db = *Database::Open(app, options);
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  EXPECT_TRUE(db->DumpTrace().empty());
}

TEST_F(DatabaseObsTest, MetricsReportContainsStageBreakdownAndCounters) {
  ScopedTiming timing(true);
  TestApp app;
  auto db = *Database::Open(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  std::string report = db->MetricsReport();
  EXPECT_NE(report.find("commit.stage.fsync_us"), std::string::npos);
  EXPECT_NE(report.find("commit.stage.lock_wait_us"), std::string::npos);
  EXPECT_NE(report.find("db.updates"), std::string::npos);
  EXPECT_NE(report.find("checkpoint.total_us"), std::string::npos);

  std::string json = db->MetricsReportJson();
  EXPECT_NE(json.find("\"db.updates\":1"), std::string::npos);
  EXPECT_NE(json.find("\"commit.stage.fsync_us\""), std::string::npos);
}

TEST_F(DatabaseObsTest, StatsStructMirrorsRegistry) {
  TestApp app;
  auto db = *Database::Open(app, Options());
  ASSERT_TRUE(db->Update(app.PreparePut("k", "v")).ok());
  ASSERT_TRUE(db->Enquire([] { return OkStatus(); }).ok());
  ASSERT_TRUE(db->Checkpoint().ok());

  DatabaseStats stats = db->stats();
  obs::Registry& registry = db->metrics();
  EXPECT_EQ(stats.updates, registry.GetCounter("db.updates").value());
  EXPECT_EQ(stats.enquiries, registry.GetCounter("db.enquiries").value());
  EXPECT_EQ(stats.checkpoints, registry.GetCounter("db.checkpoints").value());
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.enquiries, 1u);
  EXPECT_EQ(stats.checkpoints, 1u);
}

TEST_F(DatabaseObsTest, TimingDisabledKeepsCountersButSkipsHistograms) {
  ScopedTiming timing(false);
  TestApp app;
  auto db = *Database::Open(app, Options());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db->Update(app.PreparePut("k" + std::to_string(i), "v")).ok());
  }
  // Counters (always live) moved; stage histograms (timing-gated) did not.
  EXPECT_EQ(db->stats().updates, 4u);
  EXPECT_EQ(db->metrics().GetCounter("commit.fsyncs").value(), 4u);
  EXPECT_EQ(db->metrics().GetHistogram("commit.total_us").count(), 0u);
  EXPECT_TRUE(db->DumpTrace().empty());
}

TEST_F(DatabaseObsTest, PerDatabaseRegistriesAreIsolated) {
  TestApp app1, app2;
  DatabaseOptions options2 = Options();
  options2.dir = "db2";
  auto db1 = *Database::Open(app1, Options());
  auto db2 = *Database::Open(app2, options2);
  ASSERT_TRUE(db1->Update(app1.PreparePut("k", "v")).ok());
  EXPECT_EQ(db1->metrics().GetCounter("db.updates").value(), 1u);
  EXPECT_EQ(db2->metrics().GetCounter("db.updates").value(), 0u);
}

}  // namespace
}  // namespace sdb
