// Tests for ShardedDatabase and ShardedNameServer: the full-concurrency composition
// of Section 7's "multiple separate databases for checkpoints" over "a single log
// file with more complicated rules for flushing".
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "src/core/sharded.h"
#include "src/nameserver/sharded_name_server.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class ShardedTest : public ::testing::Test {
 protected:
  ShardedTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  ShardedOptions Options() {
    ShardedOptions options;
    options.vfs = &env_->fs();
    options.dir = "ensemble";
    options.clock = &env_->clock();
    return options;
  }

  Result<std::unique_ptr<ShardedDatabase>> OpenEnsemble(int k,
                                                        ShardedOptions options) {
    apps_.clear();
    std::vector<Application*> raw;
    for (int i = 0; i < k; ++i) {
      apps_.push_back(std::make_unique<TestApp>());
      raw.push_back(apps_.back().get());
    }
    return ShardedDatabase::Open(raw, std::move(options));
  }

  Result<std::unique_ptr<ShardedDatabase>> OpenEnsemble(int k) {
    return OpenEnsemble(k, Options());
  }

  void CrashAndRecoverFs() {
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }

  // The merged key->value view across every shard app.
  std::map<std::string, std::string> MergedState() const {
    std::map<std::string, std::string> merged;
    for (const auto& app : apps_) {
      merged.insert(app->state.begin(), app->state.end());
    }
    return merged;
  }

  std::unique_ptr<SimEnv> env_;
  std::vector<std::unique_ptr<TestApp>> apps_;
};

TEST_F(ShardedTest, RouterIsDeterministicAndCoversEveryShard) {
  ShardRouter router(8, 64);
  ShardRouter router2(8, 64);
  std::set<std::size_t> hit;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "key-" + std::to_string(i);
    std::size_t p = router.Route(key);
    ASSERT_LT(p, 8u);
    EXPECT_EQ(p, router2.Route(key));  // no per-process seeding
    hit.insert(p);
  }
  EXPECT_EQ(hit.size(), 8u);  // 2000 keys over 8 shards: every shard owns some

  ShardRouter solo(1, 64);
  EXPECT_EQ(solo.Route("anything"), 0u);
}

TEST_F(ShardedTest, UpdatesRouteByKeyAndReplayAfterCrash) {
  std::map<std::string, std::string> expected;
  {
    auto db = *OpenEnsemble(4);
    for (int i = 0; i < 40; ++i) {
      std::string key = "k" + std::to_string(i);
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(
          db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, value)).ok());
      expected[key] = value;
      // The home shard (and only it) saw the apply.
      EXPECT_EQ(apps_[db->ShardForKey(key)]->state[key], value);
    }
    EXPECT_EQ(db->stats().updates, 40u);
    EXPECT_EQ(MergedState(), expected);
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(4);
  EXPECT_EQ(MergedState(), expected);
  EXPECT_EQ(db->stats().replayed_entries, 40u);
  // Replay landed each entry on its home shard.
  for (const auto& [key, value] : expected) {
    EXPECT_EQ(apps_[db->ShardForKey(key)]->state[key], value);
  }
}

TEST_F(ShardedTest, OutOfRangeShardRejected) {
  auto db = *OpenEnsemble(2);
  EXPECT_TRUE(db->Update(7, apps_[0]->PreparePut("x", "y")).Is(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(db->Enquire(7, [] { return OkStatus(); }).Is(ErrorCode::kInvalidArgument));
}

TEST_F(ShardedTest, ShardCountMismatchRejected) {
  { auto db = *OpenEnsemble(4); }
  auto reopened = OpenEnsemble(2);
  EXPECT_FALSE(reopened.ok());
}

TEST_F(ShardedTest, PerShardCheckpointSkipsCoveredEntries) {
  {
    auto db = *OpenEnsemble(2);
    std::size_t p0 = db->ShardForKey("early");
    ASSERT_TRUE(db->UpdateKey("early", apps_[p0]->PreparePut("early", "x")).ok());
    ASSERT_TRUE(db->Checkpoint(p0).ok());
    std::size_t p1 = db->ShardForKey("late");
    ASSERT_TRUE(db->UpdateKey("late", apps_[p1]->PreparePut("late", "y")).ok());
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(MergedState()["early"], "x");
  EXPECT_EQ(MergedState()["late"], "y");
  // "early" was covered by its shard's checkpoint; only entries past each shard's
  // replay_from offset replayed.
  EXPECT_GE(db->stats().replay_skipped_entries, 1u);
  EXPECT_LE(db->stats().replayed_entries, 1u);
}

// Found by the sharded sim-fuzz sweep (seed 175, mixed schedule): a failed
// covering fsync leaves the in-memory log size ahead of the durable log end, and
// a checkpoint taken then records replay_from = the in-memory size. After a
// crash the log rewinds to its durable end; a NEW acknowledged entry appended
// into the reclaimed region must not be skipped as "checkpoint-covered" by the
// stale manifest claim — recovery clamps replay_from to the recovered log size.
TEST_F(ShardedTest, ReplayFromClampedToDurableLogEndAfterCrash) {
  {
    auto db = *OpenEnsemble(2);
    ASSERT_TRUE(db->UpdateKey("a", apps_[db->ShardForKey("a")]->PreparePut("a", "1")).ok());

    // Fail the next durable op (the log flush of "b"'s covering fsync): the entry
    // stays in the log writer's cache, the durable end stays put, the update is
    // never acknowledged.
    bool fired = false;
    env_->disk().SetFaultInjector([&fired](const DurableOp& op) {
      if (!fired && op.kind == DurableOp::Kind::kPageWrite) {
        fired = true;
        return FaultAction::kTransientError;
      }
      return FaultAction::kNone;
    });
    EXPECT_FALSE(db->UpdateKey("b", apps_[db->ShardForKey("b")]->PreparePut("b", "2")).ok());
    env_->disk().SetFaultInjector(nullptr);
    ASSERT_TRUE(fired);

    // Both checkpoints now record replay_from = the in-memory log size, which
    // includes the dead unacknowledged entry beyond the durable end.
    ASSERT_TRUE(db->Checkpoint(0).ok());
    ASSERT_TRUE(db->Checkpoint(1).ok());
  }
  CrashAndRecoverFs();
  {
    // Reopen: the log rewound to its durable end. The new acknowledged update
    // lands exactly in the region the stale manifest claimed was covered.
    auto db = *OpenEnsemble(2);
    EXPECT_EQ(MergedState()["a"], "1");
    EXPECT_EQ(MergedState().count("b"), 0u);
    ASSERT_TRUE(db->UpdateKey("c", apps_[db->ShardForKey("c")]->PreparePut("c", "3")).ok());
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(MergedState()["a"], "1");
  EXPECT_EQ(MergedState()["c"], "3");  // the acked update survived the crash
}

TEST_F(ShardedTest, RotationRequiresEveryShardCurrent) {
  auto db = *OpenEnsemble(3);
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(db->Update(p, apps_[p]->PreparePut("k" + std::to_string(p), "v")).ok());
  }
  EXPECT_EQ(db->log_generation(), 1u);
  EXPECT_FALSE(*db->MaybeRotateLog());  // no shard has checkpointed

  ASSERT_TRUE(db->Checkpoint(0).ok());
  ASSERT_TRUE(db->Checkpoint(1).ok());
  EXPECT_FALSE(*db->MaybeRotateLog());  // shard 2 still behind
  // Reclamation is gated by the SLOWEST shard: shard 2 still replays from offset 0.
  EXPECT_EQ(db->reclaimable_log_bytes(), 0u);

  ASSERT_TRUE(db->Checkpoint(2).ok());
  EXPECT_EQ(db->reclaimable_log_bytes(), db->log_bytes());
  EXPECT_TRUE(*db->MaybeRotateLog());
  EXPECT_EQ(db->log_generation(), 2u);
  EXPECT_EQ(db->log_bytes(), 0u);
  EXPECT_EQ(db->stats().log_rotations, 1u);

  // The ensemble keeps accepting updates on the fresh generation.
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("post", "rotate")).ok());
}

TEST_F(ShardedTest, RestartAfterRotationReplaysOnlyFreshLog) {
  std::map<std::string, std::string> expected;
  {
    auto db = *OpenEnsemble(2);
    for (int i = 0; i < 10; ++i) {
      std::string key = "a" + std::to_string(i);
      ASSERT_TRUE(
          db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, "old")).ok());
      expected[key] = "old";
    }
    ASSERT_TRUE(db->CheckpointAll().ok());
    ASSERT_TRUE(*db->MaybeRotateLog());
    ASSERT_TRUE(db->UpdateKey("fresh", apps_[db->ShardForKey("fresh")]->PreparePut(
                                           "fresh", "entry")).ok());
    expected["fresh"] = "entry";
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(MergedState(), expected);
  EXPECT_EQ(db->log_generation(), 2u);
  EXPECT_EQ(db->stats().replayed_entries, 1u);  // just "fresh"
}

TEST_F(ShardedTest, CheckpointAllCoversEveryShardAtRestart) {
  std::map<std::string, std::string> expected;
  {
    auto db = *OpenEnsemble(4);
    for (int i = 0; i < 32; ++i) {
      std::string key = "k" + std::to_string(i);
      ASSERT_TRUE(
          db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, "v")).ok());
      expected[key] = "v";
    }
    ASSERT_TRUE(db->CheckpointAll().ok());
    EXPECT_EQ(db->stats().checkpoints, 4u);
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(4);
  EXPECT_EQ(MergedState(), expected);
  EXPECT_EQ(db->stats().replayed_entries, 0u);
  EXPECT_EQ(db->stats().replay_skipped_entries, 32u);
}

TEST_F(ShardedTest, SequentialRecoveryMatchesParallelRecovery) {
  std::map<std::string, std::string> expected;
  {
    auto db = *OpenEnsemble(4);
    for (int i = 0; i < 20; ++i) {
      std::string key = "k" + std::to_string(i);
      ASSERT_TRUE(
          db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, "v")).ok());
      expected[key] = "v";
    }
    ASSERT_TRUE(db->Checkpoint(1).ok());
  }
  CrashAndRecoverFs();
  ShardedOptions sequential = Options();
  sequential.recovery_threads = 1;
  auto db = *OpenEnsemble(4, std::move(sequential));
  EXPECT_EQ(MergedState(), expected);
}

TEST_F(ShardedTest, EnquireAllSeesEveryShard) {
  auto db = *OpenEnsemble(3);
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(db->Update(p, apps_[p]->PreparePut("k" + std::to_string(p), "v")).ok());
  }
  std::size_t seen = 0;
  ASSERT_TRUE(db->EnquireAll([&] {
                  for (const auto& app : apps_) {
                    seen += app->state.size();
                  }
                  return OkStatus();
                }).ok());
  EXPECT_EQ(seen, 3u);
  // EnquireAll holds every shard's shared lock; each shard counts the read it served.
  EXPECT_EQ(db->stats().enquiries, 3u);
}

TEST_F(ShardedTest, FsyncAccountingMatchesCoalescer) {
  auto db = *OpenEnsemble(4);
  for (int i = 0; i < 24; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(
        db->UpdateKey(key, apps_[db->ShardForKey(key)]->PreparePut(key, "v")).ok());
  }
  // Satellite 1's invariant: with SyncRecords() accounting, the per-shard sum equals
  // the coalescer's covering-fsync count exactly — no double counting.
  std::uint64_t shard_sum = 0;
  for (std::size_t p = 0; p < db->shard_count(); ++p) {
    shard_sum += db->shard_commit_stats(p).syncs;
  }
  const auto coalescer = db->coalescer_stats();
  EXPECT_EQ(shard_sum, coalescer.covering_fsyncs);
  EXPECT_EQ(db->stats().covering_fsyncs, coalescer.covering_fsyncs);
  EXPECT_EQ(coalescer.batches_appended, 24u);
  EXPECT_LE(coalescer.covering_fsyncs, 24u);
}

TEST_F(ShardedTest, MetricsRollUpReportsShardAndAggregate) {
  auto db = *OpenEnsemble(2);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());
  ASSERT_TRUE(db->Checkpoint(0).ok());
  db->RollUpMetrics();

  const obs::Gauge* updates = db->metrics().FindGauge("db.updates");
  ASSERT_NE(updates, nullptr);
  EXPECT_EQ(updates->value(), 2);
  const obs::Gauge* shard0 = db->metrics().FindGauge("shard.0.updates");
  const obs::Gauge* shard1 = db->metrics().FindGauge("shard.1.updates");
  ASSERT_NE(shard0, nullptr);
  ASSERT_NE(shard1, nullptr);
  EXPECT_EQ(shard0->value() + shard1->value(), 2);
  const obs::Gauge* ppm = db->metrics().FindGauge("commit.fsyncs_per_update_ppm");
  ASSERT_NE(ppm, nullptr);
  EXPECT_GT(ppm->value(), 0);
  EXPECT_LE(ppm->value(), 1000000);  // serial writers: at most 1 fsync per update

  std::string json = db->MetricsReportJson();
  EXPECT_NE(json.find("shard.1.updates"), std::string::npos);
  EXPECT_NE(json.find("commit.fsyncs_per_update_ppm"), std::string::npos);
}

// Named *Concurrent* so the TSan CI filter exercises it.
TEST_F(ShardedTest, ShardedConcurrentWritersAcrossShards) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  auto db = *OpenEnsemble(4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        std::size_t p = db->ShardForKey(key);
        TestApp* app = apps_[p].get();
        if (!db->UpdateKey(key, [app, key]() -> Result<Bytes> {
                 testing::TestRecord record{key, key + "-value"};
                 return PickleWrite(record);
               }).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  const ShardedStats stats = db->stats();
  EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Coalescing across shards: never more fsyncs than updates, and the accounting
  // identity holds under concurrency too.
  EXPECT_LE(stats.covering_fsyncs, stats.updates);
  std::uint64_t shard_sum = 0;
  for (std::size_t p = 0; p < db->shard_count(); ++p) {
    shard_sum += db->shard_commit_stats(p).syncs;
  }
  EXPECT_EQ(shard_sum, db->coalescer_stats().covering_fsyncs);

  std::map<std::string, std::string> merged = MergedState();
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& [key, value] : merged) {
    EXPECT_EQ(value, key + "-value");
  }
}

// Writers race CheckpointAll and rotation; everything must replay consistently.
TEST_F(ShardedTest, ShardedConcurrentCheckpointsRotationsAndUpdates) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  {
    auto db = *OpenEnsemble(4);
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string key = "w" + std::to_string(t) + "-" + std::to_string(i);
          std::size_t p = db->ShardForKey(key);
          TestApp* app = apps_[p].get();
          if (!db->UpdateKey(key, [app, key]() -> Result<Bytes> {
                   testing::TestRecord record{key, "v"};
                   return PickleWrite(record);
                 }).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    std::thread maintenance([&] {
      for (int round = 0; round < 3; ++round) {
        ASSERT_TRUE(db->CheckpointAll().ok());
        ASSERT_TRUE(db->MaybeRotateLog().ok());  // may or may not rotate
      }
    });
    for (auto& writer : writers) {
      writer.join();
    }
    maintenance.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(MergedState().size(), static_cast<std::size_t>(kThreads * kPerThread));
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(4);
  std::map<std::string, std::string> merged = MergedState();
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(merged["w" + std::to_string(t) + "-" + std::to_string(i)], "v");
    }
  }
}

TEST_F(ShardedTest, AutoRotationAfterThreshold) {
  ShardedOptions options = Options();
  options.rotate_log_bytes = 1;  // any checkpoint may rotate once all are current
  auto db = *OpenEnsemble(2, std::move(options));
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());
  ASSERT_TRUE(db->Checkpoint(0).ok());
  EXPECT_EQ(db->log_generation(), 1u);  // shard 1 not yet current
  ASSERT_TRUE(db->Checkpoint(1).ok());
  EXPECT_EQ(db->log_generation(), 2u);  // rotation piggybacked on the checkpoint
}

// --- ShardedNameServer ---

class ShardedNameServerTest : public ::testing::Test {
 protected:
  ShardedNameServerTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  ns::ShardedNameServerOptions Options(std::size_t shards = 4) {
    ns::ShardedNameServerOptions options;
    options.db.vfs = &env_->fs();
    options.db.dir = "names";
    options.db.clock = &env_->clock();
    options.shards = shards;
    return options;
  }

  std::unique_ptr<SimEnv> env_;
};

TEST_F(ShardedNameServerTest, SubtreesStayWholeWithinAShard) {
  auto server = *ns::ShardedNameServer::Open(Options());
  ASSERT_TRUE(server->Set("alpha/leaf", "1").ok());
  ASSERT_TRUE(server->Set("alpha/deep/leaf", "2").ok());
  ASSERT_TRUE(server->Set("beta", "3").ok());
  // Everything under "alpha" routes with "alpha".
  EXPECT_EQ(*server->ShardForPath("alpha"), *server->ShardForPath("alpha/leaf"));
  EXPECT_EQ(*server->ShardForPath("alpha"), *server->ShardForPath("alpha/deep/leaf"));
  EXPECT_EQ(*server->Lookup("alpha/leaf"), "1");
  EXPECT_EQ(*server->Lookup("alpha/deep/leaf"), "2");
  EXPECT_EQ(*server->Lookup("beta"), "3");
  EXPECT_TRUE(server->Lookup("gamma").status().Is(ErrorCode::kNotFound));
}

TEST_F(ShardedNameServerTest, RootListAndExportMergeAcrossShards) {
  auto server = *ns::ShardedNameServer::Open(Options());
  const std::vector<std::string> names = {"zeta", "alpha", "mu", "beta", "omega"};
  for (const auto& name : names) {
    ASSERT_TRUE(server->Set(name, name + "-v").ok());
    ASSERT_TRUE(server->Set(name + "/child", name + "-c").ok());
  }
  // Names spread across shards (with 5 top-level names and 4 shards, at least two
  // shards are populated) yet List("") comes back globally sorted.
  std::vector<std::string> labels = *server->List("");
  EXPECT_EQ(labels, (std::vector<std::string>{"alpha", "beta", "mu", "omega", "zeta"}));

  std::vector<std::pair<std::string, std::string>> all = *server->Export("");
  ASSERT_EQ(all.size(), 10u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].first, all[i].first);  // global name order
  }
  // Subtree export stays single-shard and still works.
  auto subtree = *server->Export("alpha");
  ASSERT_EQ(subtree.size(), 2u);
  EXPECT_EQ(subtree[0].first, "alpha");
}

TEST_F(ShardedNameServerTest, RemoveAndCompareAndSetPreconditions) {
  auto server = *ns::ShardedNameServer::Open(Options());
  ASSERT_TRUE(server->Set("node", "v1").ok());
  EXPECT_TRUE(server->Remove("missing").Is(ErrorCode::kFailedPrecondition));
  EXPECT_TRUE(
      server->CompareAndSet("node", "wrong", "v2").Is(ErrorCode::kFailedPrecondition));
  EXPECT_EQ(*server->Lookup("node"), "v1");
  ASSERT_TRUE(server->CompareAndSet("node", "v1", "v2").ok());
  EXPECT_EQ(*server->Lookup("node"), "v2");
  ASSERT_TRUE(server->Remove("node").ok());
  EXPECT_TRUE(server->Lookup("node").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(server->Set("", "x").Is(ErrorCode::kInvalidArgument));
}

TEST_F(ShardedNameServerTest, ReopenRestartsLamportAboveAppliedStamps) {
  {
    auto server = *ns::ShardedNameServer::Open(Options());
    // Drive the lamport clock well past 1 so a naive reopen (restarting at 0) would
    // stamp below the applied watermark and lose last-writer-wins.
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(server->Set("contended", "old-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(server->CheckpointAll().ok());
  }
  env_->fs().Crash();
  ASSERT_TRUE(env_->fs().Recover().ok());
  auto server = *ns::ShardedNameServer::Open(Options());
  EXPECT_EQ(*server->Lookup("contended"), "old-7");
  ASSERT_TRUE(server->Set("contended", "new").ok());
  EXPECT_EQ(*server->Lookup("contended"), "new");  // fails if lamport restarted low
}

TEST_F(ShardedNameServerTest, ShardCountMismatchRejected) {
  { auto server = *ns::ShardedNameServer::Open(Options(4)); }
  auto reopened = ns::ShardedNameServer::Open(Options(2));
  EXPECT_FALSE(reopened.ok());
}

}  // namespace
}  // namespace sdb
