// Tests for SharedLogDatabase: the Section 7 single-shared-log variant with its
// "more complicated rules for flushing the log".
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/rng.h"
#include "src/core/shared_log.h"
#include "src/storage/sim_env.h"
#include "tests/test_app.h"

namespace sdb {
namespace {

using ::sdb::testing::TestApp;

class SharedLogTest : public ::testing::Test {
 protected:
  SharedLogTest() {
    SimEnvOptions options;
    options.microvax_cost_model = false;
    env_ = std::make_unique<SimEnv>(options);
  }

  SharedLogOptions Options() {
    SharedLogOptions options;
    options.vfs = &env_->fs();
    options.dir = "ensemble";
    options.clock = &env_->clock();
    return options;
  }

  Result<std::unique_ptr<SharedLogDatabase>> OpenEnsemble(int k) {
    apps_.clear();
    std::vector<Application*> raw;
    for (int i = 0; i < k; ++i) {
      apps_.push_back(std::make_unique<TestApp>());
      raw.push_back(apps_.back().get());
    }
    return SharedLogDatabase::Open(raw, Options());
  }

  void CrashAndRecoverFs() {
    env_->fs().Crash();
    ASSERT_TRUE(env_->fs().Recover().ok());
  }

  std::unique_ptr<SimEnv> env_;
  std::vector<std::unique_ptr<TestApp>> apps_;
};

TEST_F(SharedLogTest, UpdatesRouteToTheirPartitions) {
  auto db = *OpenEnsemble(3);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "p0")).ok());
  ASSERT_TRUE(db->Update(2, apps_[2]->PreparePut("c", "p2")).ok());
  EXPECT_EQ(apps_[0]->state["a"], "p0");
  EXPECT_TRUE(apps_[1]->state.empty());
  EXPECT_EQ(apps_[2]->state["c"], "p2");
  EXPECT_TRUE(db->Update(9, apps_[0]->PreparePut("x", "y")).Is(ErrorCode::kInvalidArgument));
}

TEST_F(SharedLogTest, RestartReplaysSharedLogPerPartition) {
  {
    auto db = *OpenEnsemble(2);
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("zero", "0")).ok());
    ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("one", "1")).ok());
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("zero", "0b")).ok());
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(apps_[0]->state["zero"], "0b");
  EXPECT_EQ(apps_[1]->state["one"], "1");
  EXPECT_EQ(db->stats().replayed_entries, 3u);
}

TEST_F(SharedLogTest, CheckpointSkipsCoveredEntriesAtRestart) {
  {
    auto db = *OpenEnsemble(2);
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("early", "x")).ok());
    ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("other", "y")).ok());
    ASSERT_TRUE(db->Checkpoint(0).ok());  // partition 0 is now current to the log end
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("late", "z")).ok());
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(apps_[0]->state.size(), 2u);
  EXPECT_EQ(apps_[1]->state.size(), 1u);
  SharedLogStats stats = db->stats();
  // Partition 0 replays only "late"; its "early" entry is covered by the checkpoint.
  // Partition 1 (never checkpointed) replays its one entry.
  EXPECT_EQ(stats.replayed_entries, 2u);
  EXPECT_EQ(stats.replay_skipped_entries, 1u);
}

TEST_F(SharedLogTest, RotationRequiresEveryPartitionCurrent) {
  auto db = *OpenEnsemble(2);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());

  // Only partition 0 checkpoints: the flushing rule forbids rotation.
  ASSERT_TRUE(db->Checkpoint(0).ok());
  EXPECT_FALSE(*db->MaybeRotateLog());
  EXPECT_EQ(db->log_generation(), 1u);
  EXPECT_GT(db->log_bytes(), 0u);

  // Partition 1 catches up: rotation allowed, log reset.
  ASSERT_TRUE(db->Checkpoint(1).ok());
  EXPECT_TRUE(*db->MaybeRotateLog());
  EXPECT_EQ(db->log_generation(), 2u);
  EXPECT_EQ(db->log_bytes(), 0u);
  EXPECT_FALSE(*env_->fs().Exists("ensemble/logfile1"));
}

TEST_F(SharedLogTest, ReclaimableBytesTrackSlowestPartition) {
  auto db = *OpenEnsemble(2);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());
  EXPECT_EQ(db->reclaimable_log_bytes(), 0u);  // nobody checkpointed
  ASSERT_TRUE(db->Checkpoint(1).ok());
  // Partition 0's replay-from is still 0: nothing reclaimable yet.
  EXPECT_EQ(db->reclaimable_log_bytes(), 0u);
  ASSERT_TRUE(db->Checkpoint(0).ok());
  EXPECT_EQ(db->reclaimable_log_bytes(), db->log_bytes());
}

TEST_F(SharedLogTest, AutoRotationAfterThreshold) {
  SharedLogOptions options = Options();
  options.rotate_log_bytes = 1;  // rotate at the first opportunity
  apps_.clear();
  std::vector<Application*> raw;
  for (int i = 0; i < 2; ++i) {
    apps_.push_back(std::make_unique<TestApp>());
    raw.push_back(apps_.back().get());
  }
  auto db = *SharedLogDatabase::Open(raw, options);
  ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("a", "1")).ok());
  ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("b", "2")).ok());
  ASSERT_TRUE(db->Checkpoint(0).ok());  // rule not satisfied: no rotation
  EXPECT_EQ(db->log_generation(), 1u);
  ASSERT_TRUE(db->Checkpoint(1).ok());  // now both current: auto-rotation fires
  EXPECT_EQ(db->log_generation(), 2u);
  EXPECT_EQ(db->stats().log_rotations, 1u);
}

TEST_F(SharedLogTest, RestartAfterRotation) {
  {
    auto db = *OpenEnsemble(2);
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("pre", "rotation")).ok());
    ASSERT_TRUE(db->Checkpoint(0).ok());
    ASSERT_TRUE(db->Checkpoint(1).ok());
    ASSERT_TRUE(*db->MaybeRotateLog());
    ASSERT_TRUE(db->Update(1, apps_[1]->PreparePut("post", "rotation")).ok());
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(apps_[0]->state["pre"], "rotation");
  EXPECT_EQ(apps_[1]->state["post"], "rotation");
  EXPECT_EQ(db->log_generation(), 2u);
}

TEST_F(SharedLogTest, PartitionCountMismatchRejected) {
  { auto db = *OpenEnsemble(2); }
  auto wrong = OpenEnsemble(3);
  EXPECT_TRUE(wrong.status().Is(ErrorCode::kInvalidArgument));
}

TEST_F(SharedLogTest, UncommittedSharedLogEntryVanishes) {
  {
    auto db = *OpenEnsemble(2);
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("durable", "yes")).ok());
    CrashPlan plan(env_->disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Update(1, apps_[1]->PreparePut("lost", "no")).ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(2);
  EXPECT_EQ(apps_[0]->state["durable"], "yes");
  EXPECT_EQ(apps_[1]->state.count("lost"), 0u);
  (void)db;
}

TEST_F(SharedLogTest, CrashBetweenCheckpointAndManifestRollsBack) {
  {
    auto db = *OpenEnsemble(2);
    ASSERT_TRUE(db->Update(0, apps_[0]->PreparePut("k", "v")).ok());
    // Crash during the checkpoint's durable steps (before the manifest rename lands).
    CrashPlan plan(env_->disk().next_durable_op_sequence() + 1, FaultAction::kCrashBefore);
    env_->disk().SetFaultInjector(plan.AsInjector());
    EXPECT_FALSE(db->Checkpoint(0).ok());
    env_->disk().SetFaultInjector(nullptr);
  }
  CrashAndRecoverFs();
  auto db = OpenEnsemble(2);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(apps_[0]->state["k"], "v");  // replayed from the shared log as before
}

TEST_F(SharedLogTest, ManyInterleavedUpdatesAcrossPartitions) {
  constexpr int kPartitions = 4;
  std::vector<std::map<std::string, std::string>> models(kPartitions);
  {
    auto db = *OpenEnsemble(kPartitions);
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
      int p = static_cast<int>(rng.NextBelow(kPartitions));
      std::string key = "k" + std::to_string(rng.NextBelow(10));
      std::string value = rng.NextString(20);
      ASSERT_TRUE(db->Update(p, apps_[p]->PreparePut(key, value)).ok());
      models[p][key] = value;
      if (i % 37 == 0) {
        ASSERT_TRUE(db->Checkpoint(static_cast<std::size_t>(rng.NextBelow(kPartitions))).ok());
      }
    }
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(apps_[p]->state, models[p]) << "partition " << p;
  }
  (void)db;
}

// Exhaustive crash sweep over the ensemble protocol, including its extra crash
// windows: per-partition checkpoint commit (the manifest rename) and log rotation.
class SharedLogCrashSweep : public ::testing::TestWithParam<int> {
 protected:
  struct Outcome {
    // (partition, key) pairs acknowledged / failed.
    std::vector<std::pair<int, std::string>> acked;
    std::vector<std::pair<int, std::string>> failed;
    std::uint64_t total_ops = 0;
  };

  static Outcome RunScript(SimEnv& env, std::vector<std::unique_ptr<TestApp>>& apps) {
    Outcome outcome;
    apps.clear();
    std::vector<Application*> raw;
    for (int i = 0; i < 2; ++i) {
      apps.push_back(std::make_unique<TestApp>());
      raw.push_back(apps.back().get());
    }
    SharedLogOptions options;
    options.vfs = &env.fs();
    options.dir = "ensemble";
    auto db_or = SharedLogDatabase::Open(raw, options);
    if (!db_or.ok()) {
      return outcome;
    }
    auto db = std::move(*db_or);

    auto update = [&](int p, const std::string& key) {
      Status status = db->Update(static_cast<std::size_t>(p),
                                 apps[static_cast<std::size_t>(p)]->PreparePut(
                                     key, "value-" + key));
      (status.ok() ? outcome.acked : outcome.failed).emplace_back(p, key);
      return status.ok();
    };

    if (!update(0, "a0") || !update(1, "b0") || !update(0, "a1")) {
      return outcome;
    }
    if (!db->Checkpoint(0).ok() || !db->Checkpoint(1).ok()) {
      return outcome;
    }
    if (!db->MaybeRotateLog().ok()) {
      return outcome;
    }
    if (!update(1, "b1") || !update(0, "a2")) {
      return outcome;
    }
    outcome.total_ops = env.disk().next_durable_op_sequence() - 1;
    return outcome;
  }
};

TEST_P(SharedLogCrashSweep, InvariantsHoldAtEveryCrashPoint) {
  FaultAction action = static_cast<FaultAction>(GetParam());

  std::uint64_t total_ops = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry(env_options);
    std::vector<std::unique_ptr<TestApp>> apps;
    Outcome outcome = RunScript(dry, apps);
    ASSERT_EQ(outcome.acked.size(), 5u);
    total_ops = outcome.total_ops;
    ASSERT_GT(total_ops, 10u);
  }

  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    SCOPED_TRACE("crash at durable op " + std::to_string(crash_at));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());
    std::vector<std::unique_ptr<TestApp>> apps;
    Outcome outcome = RunScript(env, apps);
    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());

    std::vector<std::unique_ptr<TestApp>> recovered;
    std::vector<Application*> raw;
    for (int i = 0; i < 2; ++i) {
      recovered.push_back(std::make_unique<TestApp>());
      raw.push_back(recovered.back().get());
    }
    SharedLogOptions options;
    options.vfs = &env.fs();
    options.dir = "ensemble";
    auto db = SharedLogDatabase::Open(raw, options);
    ASSERT_TRUE(db.ok()) << "ensemble recovery failed at op " << crash_at << ": "
                         << db.status();

    for (const auto& [p, key] : outcome.acked) {
      const auto& state = recovered[static_cast<std::size_t>(p)]->state;
      ASSERT_EQ(state.count(key), 1u)
          << "acked update p" << p << "/" << key << " lost at crash op " << crash_at;
      EXPECT_EQ(state.at(key), "value-" + key);
    }
    for (const auto& [p, key] : outcome.failed) {
      const auto& state = recovered[static_cast<std::size_t>(p)]->state;
      if (state.count(key) != 0) {
        EXPECT_EQ(state.at(key), "value-" + key);  // fully applied or fully absent
      }
    }
    // And the ensemble keeps working.
    ASSERT_TRUE((*db)->Update(0, recovered[0]->PreparePut("post", "crash")).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaultFlavours, SharedLogCrashSweep,
                         ::testing::Values(static_cast<int>(FaultAction::kCrashBefore),
                                           static_cast<int>(FaultAction::kCrashTorn),
                                           static_cast<int>(FaultAction::kCrashAfter)));

TEST_F(SharedLogTest, ConcurrentUpdatesAcrossPartitionsAreSerializable) {
  // Four threads hammer four partitions through the one shared log; afterwards every
  // partition holds exactly its own writes, and a restart reproduces the same state.
  constexpr int kPartitions = 4;
  constexpr int kUpdatesPerThread = 100;
  {
    auto db = *OpenEnsemble(kPartitions);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int p = 0; p < kPartitions; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < kUpdatesPerThread; ++i) {
          Status status = db->Update(
              static_cast<std::size_t>(p),
              apps_[static_cast<std::size_t>(p)]->PreparePut(
                  "t" + std::to_string(i), "p" + std::to_string(p) + "-" +
                                               std::to_string(i)));
          if (!status.ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(db->stats().updates, kPartitions * kUpdatesPerThread);
    for (int p = 0; p < kPartitions; ++p) {
      EXPECT_EQ(apps_[static_cast<std::size_t>(p)]->state.size(),
                static_cast<std::size_t>(kUpdatesPerThread));
      EXPECT_EQ(apps_[static_cast<std::size_t>(p)]->state["t42"],
                "p" + std::to_string(p) + "-42");
    }
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(apps_[static_cast<std::size_t>(p)]->state.size(),
              static_cast<std::size_t>(kUpdatesPerThread));
  }
  (void)db;
}

TEST_F(SharedLogTest, ConcurrentCheckpointsAndUpdates) {
  // One thread checkpoints partitions round-robin while others update: checkpoints of
  // partition p stall only p's updates, never the other partitions'.
  constexpr int kPartitions = 3;
  auto db = *OpenEnsemble(kPartitions);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int p = 0; p < kPartitions; ++p) {
    writers.emplace_back([&, p] {
      int i = 0;
      while (!stop.load()) {
        Status status =
            db->Update(static_cast<std::size_t>(p),
                       apps_[static_cast<std::size_t>(p)]->PreparePut(
                           "k" + std::to_string(i++ % 50), "v"));
        if (!status.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int round = 0; round < 12; ++round) {
    Status status = db->Checkpoint(static_cast<std::size_t>(round % kPartitions));
    if (!status.ok()) {
      failures.fetch_add(1);
    }
  }
  stop = true;
  for (auto& thread : writers) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db->stats().checkpoints, 12u);
}

TEST_F(SharedLogTest, ConcurrentCheckpointsRacingRotation) {
  // Checkpoints, rotation attempts, and updates all race: the flushing rule decides
  // each rotation under log_mutex_, so whatever interleaving occurs, acknowledged
  // updates must survive a crash and partitions stay disjoint.
  constexpr int kPartitions = 3;
  constexpr int kPerPartition = 60;
  std::vector<std::map<std::string, std::string>> models(kPartitions);
  {
    auto db = *OpenEnsemble(kPartitions);
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    for (int p = 0; p < kPartitions; ++p) {
      writers.emplace_back([&, p] {
        for (int i = 0; i < kPerPartition; ++i) {
          std::string key = "k" + std::to_string(i);
          if (!db->Update(static_cast<std::size_t>(p),
                          apps_[static_cast<std::size_t>(p)]->PreparePut(key, "v"))
                   .ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    std::thread checkpointer([&] {
      for (int round = 0; round < 9; ++round) {
        if (!db->Checkpoint(static_cast<std::size_t>(round % kPartitions)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
    std::thread rotator([&] {
      for (int attempt = 0; attempt < 20; ++attempt) {
        if (!db->MaybeRotateLog().ok()) {  // false (rule says no) is fine; errors not
          failures.fetch_add(1);
        }
      }
    });
    for (auto& writer : writers) {
      writer.join();
    }
    checkpointer.join();
    rotator.join();
    ASSERT_EQ(failures.load(), 0);
    for (int p = 0; p < kPartitions; ++p) {
      models[p] = apps_[static_cast<std::size_t>(p)]->state;
      EXPECT_EQ(models[p].size(), static_cast<std::size_t>(kPerPartition));
    }
    // Quiesced: every partition checkpoints, then rotation must be permitted.
    for (int p = 0; p < kPartitions; ++p) {
      ASSERT_TRUE(db->Checkpoint(static_cast<std::size_t>(p)).ok());
    }
    ASSERT_TRUE(*db->MaybeRotateLog());
  }
  CrashAndRecoverFs();
  auto db = *OpenEnsemble(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(apps_[static_cast<std::size_t>(p)]->state, models[p]) << "partition " << p;
  }
  (void)db;
}

// Targeted sweep over rotation's commit window: every durable op from the fresh
// log's creation through the manifest rename to the old log's deletion. A crash
// between the manifest commit and the old-log delete must leave a recoverable
// directory where reopen adopts the new generation and sweeps the stray file.
TEST_F(SharedLogTest, CrashBetweenRotationCommitAndOldLogDeleteRecovers) {
  struct Script {
    // Durable-op ordinals bracketing MaybeRotateLog in a fault-free run.
    std::uint64_t before_rotation = 0;
    std::uint64_t after_rotation = 0;
  };
  auto run_script = [](SimEnv& env, std::vector<std::unique_ptr<TestApp>>& apps,
                       Script* script) -> bool {
    apps.clear();
    std::vector<Application*> raw;
    for (int i = 0; i < 2; ++i) {
      apps.push_back(std::make_unique<TestApp>());
      raw.push_back(apps.back().get());
    }
    SharedLogOptions options;
    options.vfs = &env.fs();
    options.dir = "ensemble";
    auto db_or = SharedLogDatabase::Open(raw, options);
    if (!db_or.ok()) {
      return false;
    }
    auto db = std::move(*db_or);
    if (!db->Update(0, apps[0]->PreparePut("a", "1")).ok() ||
        !db->Update(1, apps[1]->PreparePut("b", "2")).ok()) {
      return false;
    }
    if (!db->Checkpoint(0).ok() || !db->Checkpoint(1).ok()) {
      return false;
    }
    if (script != nullptr) {
      script->before_rotation = env.disk().next_durable_op_sequence();
    }
    auto rotated = db->MaybeRotateLog();
    if (!rotated.ok() || !*rotated) {
      return false;
    }
    if (script != nullptr) {
      script->after_rotation = env.disk().next_durable_op_sequence();
    }
    return true;
  };

  Script script;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv dry(env_options);
    std::vector<std::unique_ptr<TestApp>> apps;
    ASSERT_TRUE(run_script(dry, apps, &script));
    ASSERT_GT(script.after_rotation, script.before_rotation);
  }

  for (std::uint64_t crash_at = script.before_rotation;
       crash_at < script.after_rotation; ++crash_at) {
    SCOPED_TRACE("crash at rotation durable op " + std::to_string(crash_at));
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, FaultAction::kCrashAfter);
    env.disk().SetFaultInjector(plan.AsInjector());
    std::vector<std::unique_ptr<TestApp>> apps;
    run_script(env, apps, nullptr);
    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    ASSERT_TRUE(env.fs().Recover().ok());

    std::vector<std::unique_ptr<TestApp>> recovered;
    std::vector<Application*> raw;
    for (int i = 0; i < 2; ++i) {
      recovered.push_back(std::make_unique<TestApp>());
      raw.push_back(recovered.back().get());
    }
    SharedLogOptions options;
    options.vfs = &env.fs();
    options.dir = "ensemble";
    auto db = SharedLogDatabase::Open(raw, options);
    ASSERT_TRUE(db.ok()) << "reopen failed: " << db.status();
    // Checkpointed data survives whichever side of the commit the crash landed on.
    EXPECT_EQ(recovered[0]->state["a"], "1");
    EXPECT_EQ(recovered[1]->state["b"], "2");
    // Exactly one log file remains: reopen swept whichever generation lost. In
    // particular a crash after the manifest rename but before the old log's delete
    // leaves both files on disk, and the stale generation-1 file must go.
    std::uint64_t generation = (*db)->log_generation();
    auto old_exists = env.fs().Exists("ensemble/logfile1");
    auto new_exists =
        env.fs().Exists("ensemble/logfile" + std::to_string(generation));
    ASSERT_TRUE(old_exists.ok());
    ASSERT_TRUE(new_exists.ok());
    EXPECT_TRUE(*new_exists);
    if (generation > 1) {
      EXPECT_FALSE(*old_exists) << "stale pre-rotation log not swept";
    }
    // And the ensemble keeps accepting updates and can rotate again.
    ASSERT_TRUE((*db)->Update(0, recovered[0]->PreparePut("post", "crash")).ok());
    ASSERT_TRUE((*db)->Checkpoint(0).ok());
    ASSERT_TRUE((*db)->Checkpoint(1).ok());
    ASSERT_TRUE((*db)->MaybeRotateLog().ok());
  }
}

}  // namespace
}  // namespace sdb
