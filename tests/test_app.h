// A small instrumented Application used by the engine tests: a string->string map
// with controllable failure injection on apply.
#ifndef SMALLDB_TESTS_TEST_APP_H_
#define SMALLDB_TESTS_TEST_APP_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/database.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb::testing {

struct TestRecord {
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(TestRecord, key, value)
};

class TestApp : public Application {
 public:
  Status ResetState() override {
    state.clear();
    ++resets;
    return OkStatus();
  }

  Result<Bytes> SerializeState() override {
    ++serializations;
    PickleWriter writer;
    writer.Write(state);
    return std::move(writer).FinishEnvelope("TestApp.state");
  }

  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "TestApp.state"));
    return reader.Read(state);
  }

  Status ApplyUpdate(ByteSpan record) override {
    if (fail_next_apply) {
      fail_next_apply = false;
      return InternalError("injected apply failure");
    }
    SDB_ASSIGN_OR_RETURN(TestRecord update, PickleRead<TestRecord>(record));
    state.insert_or_assign(update.key, update.value);
    ++applies;
    return OkStatus();
  }

  // Parallel replay: per-batch key -> last-value effects, merged after all batches
  // succeed. fail_next_apply is deliberately NOT consulted on this path — it is a
  // single-shot flag and racing workers over it would be both a data race and a
  // nondeterministic test; recovery-failure tests use serial replay (threads = 1).
  class Batch final : public ReplayBatch {
   public:
    Status Apply(ByteSpan record) override {
      SDB_ASSIGN_OR_RETURN(TestRecord update, PickleRead<TestRecord>(record));
      effects.insert_or_assign(std::move(update.key), std::move(update.value));
      return OkStatus();
    }
    std::map<std::string, std::string> effects;
  };

  bool ReplayKeyOf(ByteSpan record, std::string* key) override {
    Result<TestRecord> update = PickleRead<TestRecord>(record);
    if (!update.ok()) {
      return false;
    }
    *key = std::move(update->key);
    return true;
  }

  std::unique_ptr<ReplayBatch> StartReplayBatch() override {
    return std::make_unique<Batch>();
  }

  Status MergeReplayBatch(ReplayBatch& batch) override {
    Batch& effects = static_cast<Batch&>(batch);
    applies += static_cast<int>(effects.effects.size());
    for (auto& [key, value] : effects.effects) {
      state.insert_or_assign(key, std::move(value));
    }
    return OkStatus();
  }

  // Builds the prepare callback for Database::Update: optional precondition that the
  // key must not yet exist.
  std::function<Result<Bytes>()> PreparePut(std::string key, std::string value,
                                            bool require_absent = false) {
    return [this, key = std::move(key), value = std::move(value), require_absent]()
               -> Result<Bytes> {
      if (require_absent && state.count(key) != 0) {
        return FailedPreconditionError("key exists: " + key);
      }
      TestRecord record{key, value};
      return PickleWrite(record);
    };
  }

  std::map<std::string, std::string> state;
  int resets = 0;
  int serializations = 0;
  int applies = 0;
  bool fail_next_apply = false;
};

}  // namespace sdb::testing

#endif  // SMALLDB_TESTS_TEST_APP_H_
