file(REMOVE_RECURSE
  "CMakeFiles/bench_operation_latency.dir/bench_operation_latency.cc.o"
  "CMakeFiles/bench_operation_latency.dir/bench_operation_latency.cc.o.d"
  "bench_operation_latency"
  "bench_operation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
