# Empty compiler generated dependencies file for bench_operation_latency.
# This may be replaced when dependencies are built.
