# Empty compiler generated dependencies file for bench_remote_ops.
# This may be replaced when dependencies are built.
