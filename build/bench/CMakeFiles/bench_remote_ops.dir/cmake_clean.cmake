file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_ops.dir/bench_remote_ops.cc.o"
  "CMakeFiles/bench_remote_ops.dir/bench_remote_ops.cc.o.d"
  "bench_remote_ops"
  "bench_remote_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
