file(REMOVE_RECURSE
  "CMakeFiles/bench_update_breakdown.dir/bench_update_breakdown.cc.o"
  "CMakeFiles/bench_update_breakdown.dir/bench_update_breakdown.cc.o.d"
  "bench_update_breakdown"
  "bench_update_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
