# Empty dependencies file for bench_update_breakdown.
# This may be replaced when dependencies are built.
