file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_policy.dir/bench_checkpoint_policy.cc.o"
  "CMakeFiles/bench_checkpoint_policy.dir/bench_checkpoint_policy.cc.o.d"
  "bench_checkpoint_policy"
  "bench_checkpoint_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
