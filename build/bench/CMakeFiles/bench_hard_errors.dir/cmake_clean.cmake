file(REMOVE_RECURSE
  "CMakeFiles/bench_hard_errors.dir/bench_hard_errors.cc.o"
  "CMakeFiles/bench_hard_errors.dir/bench_hard_errors.cc.o.d"
  "bench_hard_errors"
  "bench_hard_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hard_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
