# Empty dependencies file for bench_hard_errors.
# This may be replaced when dependencies are built.
