file(REMOVE_RECURSE
  "CMakeFiles/bench_technique_comparison.dir/bench_technique_comparison.cc.o"
  "CMakeFiles/bench_technique_comparison.dir/bench_technique_comparison.cc.o.d"
  "bench_technique_comparison"
  "bench_technique_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_technique_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
