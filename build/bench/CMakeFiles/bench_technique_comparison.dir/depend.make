# Empty dependencies file for bench_technique_comparison.
# This may be replaced when dependencies are built.
