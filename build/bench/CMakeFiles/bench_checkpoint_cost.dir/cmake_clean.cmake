file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_cost.dir/bench_checkpoint_cost.cc.o"
  "CMakeFiles/bench_checkpoint_cost.dir/bench_checkpoint_cost.cc.o.d"
  "bench_checkpoint_cost"
  "bench_checkpoint_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
