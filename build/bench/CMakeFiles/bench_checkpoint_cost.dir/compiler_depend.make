# Empty compiler generated dependencies file for bench_checkpoint_cost.
# This may be replaced when dependencies are built.
