
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_checkpoint_cost.cc" "bench/CMakeFiles/bench_checkpoint_cost.dir/bench_checkpoint_cost.cc.o" "gcc" "bench/CMakeFiles/bench_checkpoint_cost.dir/bench_checkpoint_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pickle/CMakeFiles/sdb_pickle.dir/DependInfo.cmake"
  "/root/repo/build/src/typedheap/CMakeFiles/sdb_typedheap.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/sdb_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/nameserver/CMakeFiles/sdb_nameserver.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sdb_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
