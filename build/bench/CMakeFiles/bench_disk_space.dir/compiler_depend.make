# Empty compiler generated dependencies file for bench_disk_space.
# This may be replaced when dependencies are built.
