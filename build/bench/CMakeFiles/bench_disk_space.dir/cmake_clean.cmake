file(REMOVE_RECURSE
  "CMakeFiles/bench_disk_space.dir/bench_disk_space.cc.o"
  "CMakeFiles/bench_disk_space.dir/bench_disk_space.cc.o.d"
  "bench_disk_space"
  "bench_disk_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
