# Empty compiler generated dependencies file for bench_crash_matrix.
# This may be replaced when dependencies are built.
