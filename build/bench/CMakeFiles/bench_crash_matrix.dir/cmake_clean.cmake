file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_matrix.dir/bench_crash_matrix.cc.o"
  "CMakeFiles/bench_crash_matrix.dir/bench_crash_matrix.cc.o.d"
  "bench_crash_matrix"
  "bench_crash_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
