# Empty dependencies file for bench_lock_matrix.
# This may be replaced when dependencies are built.
