file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_matrix.dir/bench_lock_matrix.cc.o"
  "CMakeFiles/bench_lock_matrix.dir/bench_lock_matrix.cc.o.d"
  "bench_lock_matrix"
  "bench_lock_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
