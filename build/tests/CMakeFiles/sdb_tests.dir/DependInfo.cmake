
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/backup_test.cc" "tests/CMakeFiles/sdb_tests.dir/backup_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/backup_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/sdb_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/sdb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crash_matrix_test.cc" "tests/CMakeFiles/sdb_tests.dir/crash_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/crash_matrix_test.cc.o.d"
  "/root/repo/tests/database_edge_test.cc" "tests/CMakeFiles/sdb_tests.dir/database_edge_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/database_edge_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/sdb_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/sdb_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/directory_service_test.cc" "tests/CMakeFiles/sdb_tests.dir/directory_service_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/directory_service_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/sdb_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/sdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/log_test.cc" "tests/CMakeFiles/sdb_tests.dir/log_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/log_test.cc.o.d"
  "/root/repo/tests/misc_extensions_test.cc" "tests/CMakeFiles/sdb_tests.dir/misc_extensions_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/misc_extensions_test.cc.o.d"
  "/root/repo/tests/name_server_test.cc" "tests/CMakeFiles/sdb_tests.dir/name_server_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/name_server_test.cc.o.d"
  "/root/repo/tests/name_tree_test.cc" "tests/CMakeFiles/sdb_tests.dir/name_tree_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/name_tree_test.cc.o.d"
  "/root/repo/tests/paper_fidelity_test.cc" "tests/CMakeFiles/sdb_tests.dir/paper_fidelity_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/paper_fidelity_test.cc.o.d"
  "/root/repo/tests/partitioned_test.cc" "tests/CMakeFiles/sdb_tests.dir/partitioned_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/partitioned_test.cc.o.d"
  "/root/repo/tests/pickle_extended_test.cc" "tests/CMakeFiles/sdb_tests.dir/pickle_extended_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/pickle_extended_test.cc.o.d"
  "/root/repo/tests/pickle_test.cc" "tests/CMakeFiles/sdb_tests.dir/pickle_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/pickle_test.cc.o.d"
  "/root/repo/tests/posix_fs_test.cc" "tests/CMakeFiles/sdb_tests.dir/posix_fs_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/posix_fs_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/sdb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/sdb_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/rpc_test.cc" "tests/CMakeFiles/sdb_tests.dir/rpc_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/rpc_test.cc.o.d"
  "/root/repo/tests/shared_log_test.cc" "tests/CMakeFiles/sdb_tests.dir/shared_log_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/shared_log_test.cc.o.d"
  "/root/repo/tests/sim_disk_test.cc" "tests/CMakeFiles/sdb_tests.dir/sim_disk_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/sim_disk_test.cc.o.d"
  "/root/repo/tests/sim_fs_test.cc" "tests/CMakeFiles/sdb_tests.dir/sim_fs_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/sim_fs_test.cc.o.d"
  "/root/repo/tests/sue_lock_test.cc" "tests/CMakeFiles/sdb_tests.dir/sue_lock_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/sue_lock_test.cc.o.d"
  "/root/repo/tests/typedheap_test.cc" "tests/CMakeFiles/sdb_tests.dir/typedheap_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/typedheap_test.cc.o.d"
  "/root/repo/tests/version_store_test.cc" "tests/CMakeFiles/sdb_tests.dir/version_store_test.cc.o" "gcc" "tests/CMakeFiles/sdb_tests.dir/version_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pickle/CMakeFiles/sdb_pickle.dir/DependInfo.cmake"
  "/root/repo/build/src/typedheap/CMakeFiles/sdb_typedheap.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/sdb_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/nameserver/CMakeFiles/sdb_nameserver.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sdb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dirsvc/CMakeFiles/sdb_dirsvc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
