# Empty dependencies file for sdb_tests.
# This may be replaced when dependencies are built.
