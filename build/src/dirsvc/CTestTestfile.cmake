# CMake generated Testfile for 
# Source directory: /root/repo/src/dirsvc
# Build directory: /root/repo/build/src/dirsvc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
