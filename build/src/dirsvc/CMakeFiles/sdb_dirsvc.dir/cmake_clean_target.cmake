file(REMOVE_RECURSE
  "libsdb_dirsvc.a"
)
