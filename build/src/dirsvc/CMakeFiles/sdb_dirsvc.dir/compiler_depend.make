# Empty compiler generated dependencies file for sdb_dirsvc.
# This may be replaced when dependencies are built.
