file(REMOVE_RECURSE
  "CMakeFiles/sdb_dirsvc.dir/directory_service.cc.o"
  "CMakeFiles/sdb_dirsvc.dir/directory_service.cc.o.d"
  "CMakeFiles/sdb_dirsvc.dir/directory_service_rpc.cc.o"
  "CMakeFiles/sdb_dirsvc.dir/directory_service_rpc.cc.o.d"
  "libsdb_dirsvc.a"
  "libsdb_dirsvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_dirsvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
