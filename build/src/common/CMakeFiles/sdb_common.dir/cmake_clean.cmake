file(REMOVE_RECURSE
  "CMakeFiles/sdb_common.dir/bytes.cc.o"
  "CMakeFiles/sdb_common.dir/bytes.cc.o.d"
  "CMakeFiles/sdb_common.dir/clock.cc.o"
  "CMakeFiles/sdb_common.dir/clock.cc.o.d"
  "CMakeFiles/sdb_common.dir/crc.cc.o"
  "CMakeFiles/sdb_common.dir/crc.cc.o.d"
  "CMakeFiles/sdb_common.dir/logging.cc.o"
  "CMakeFiles/sdb_common.dir/logging.cc.o.d"
  "CMakeFiles/sdb_common.dir/status.cc.o"
  "CMakeFiles/sdb_common.dir/status.cc.o.d"
  "libsdb_common.a"
  "libsdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
