# Empty dependencies file for sdb_common.
# This may be replaced when dependencies are built.
