file(REMOVE_RECURSE
  "libsdb_common.a"
)
