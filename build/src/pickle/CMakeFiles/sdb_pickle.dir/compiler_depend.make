# Empty compiler generated dependencies file for sdb_pickle.
# This may be replaced when dependencies are built.
