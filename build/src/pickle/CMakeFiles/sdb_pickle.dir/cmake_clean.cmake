file(REMOVE_RECURSE
  "CMakeFiles/sdb_pickle.dir/pickle.cc.o"
  "CMakeFiles/sdb_pickle.dir/pickle.cc.o.d"
  "libsdb_pickle.a"
  "libsdb_pickle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_pickle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
