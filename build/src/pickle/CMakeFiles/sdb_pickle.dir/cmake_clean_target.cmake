file(REMOVE_RECURSE
  "libsdb_pickle.a"
)
