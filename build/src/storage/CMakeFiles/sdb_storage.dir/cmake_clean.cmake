file(REMOVE_RECURSE
  "CMakeFiles/sdb_storage.dir/posix_fs.cc.o"
  "CMakeFiles/sdb_storage.dir/posix_fs.cc.o.d"
  "CMakeFiles/sdb_storage.dir/sim_disk.cc.o"
  "CMakeFiles/sdb_storage.dir/sim_disk.cc.o.d"
  "CMakeFiles/sdb_storage.dir/sim_fs.cc.o"
  "CMakeFiles/sdb_storage.dir/sim_fs.cc.o.d"
  "CMakeFiles/sdb_storage.dir/vfs.cc.o"
  "CMakeFiles/sdb_storage.dir/vfs.cc.o.d"
  "libsdb_storage.a"
  "libsdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
