
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/posix_fs.cc" "src/storage/CMakeFiles/sdb_storage.dir/posix_fs.cc.o" "gcc" "src/storage/CMakeFiles/sdb_storage.dir/posix_fs.cc.o.d"
  "/root/repo/src/storage/sim_disk.cc" "src/storage/CMakeFiles/sdb_storage.dir/sim_disk.cc.o" "gcc" "src/storage/CMakeFiles/sdb_storage.dir/sim_disk.cc.o.d"
  "/root/repo/src/storage/sim_fs.cc" "src/storage/CMakeFiles/sdb_storage.dir/sim_fs.cc.o" "gcc" "src/storage/CMakeFiles/sdb_storage.dir/sim_fs.cc.o.d"
  "/root/repo/src/storage/vfs.cc" "src/storage/CMakeFiles/sdb_storage.dir/vfs.cc.o" "gcc" "src/storage/CMakeFiles/sdb_storage.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
