# Empty dependencies file for sdb_typedheap.
# This may be replaced when dependencies are built.
