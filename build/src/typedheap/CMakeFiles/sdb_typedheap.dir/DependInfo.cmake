
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typedheap/heap.cc" "src/typedheap/CMakeFiles/sdb_typedheap.dir/heap.cc.o" "gcc" "src/typedheap/CMakeFiles/sdb_typedheap.dir/heap.cc.o.d"
  "/root/repo/src/typedheap/heap_pickle.cc" "src/typedheap/CMakeFiles/sdb_typedheap.dir/heap_pickle.cc.o" "gcc" "src/typedheap/CMakeFiles/sdb_typedheap.dir/heap_pickle.cc.o.d"
  "/root/repo/src/typedheap/type_desc.cc" "src/typedheap/CMakeFiles/sdb_typedheap.dir/type_desc.cc.o" "gcc" "src/typedheap/CMakeFiles/sdb_typedheap.dir/type_desc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pickle/CMakeFiles/sdb_pickle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
