file(REMOVE_RECURSE
  "libsdb_typedheap.a"
)
