file(REMOVE_RECURSE
  "CMakeFiles/sdb_typedheap.dir/heap.cc.o"
  "CMakeFiles/sdb_typedheap.dir/heap.cc.o.d"
  "CMakeFiles/sdb_typedheap.dir/heap_pickle.cc.o"
  "CMakeFiles/sdb_typedheap.dir/heap_pickle.cc.o.d"
  "CMakeFiles/sdb_typedheap.dir/type_desc.cc.o"
  "CMakeFiles/sdb_typedheap.dir/type_desc.cc.o.d"
  "libsdb_typedheap.a"
  "libsdb_typedheap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_typedheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
