file(REMOVE_RECURSE
  "libsdb_rpc.a"
)
