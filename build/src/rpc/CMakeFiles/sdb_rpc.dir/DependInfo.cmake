
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cc" "src/rpc/CMakeFiles/sdb_rpc.dir/client.cc.o" "gcc" "src/rpc/CMakeFiles/sdb_rpc.dir/client.cc.o.d"
  "/root/repo/src/rpc/message.cc" "src/rpc/CMakeFiles/sdb_rpc.dir/message.cc.o" "gcc" "src/rpc/CMakeFiles/sdb_rpc.dir/message.cc.o.d"
  "/root/repo/src/rpc/server.cc" "src/rpc/CMakeFiles/sdb_rpc.dir/server.cc.o" "gcc" "src/rpc/CMakeFiles/sdb_rpc.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pickle/CMakeFiles/sdb_pickle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
