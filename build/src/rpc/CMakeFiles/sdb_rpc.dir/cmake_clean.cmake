file(REMOVE_RECURSE
  "CMakeFiles/sdb_rpc.dir/client.cc.o"
  "CMakeFiles/sdb_rpc.dir/client.cc.o.d"
  "CMakeFiles/sdb_rpc.dir/message.cc.o"
  "CMakeFiles/sdb_rpc.dir/message.cc.o.d"
  "CMakeFiles/sdb_rpc.dir/server.cc.o"
  "CMakeFiles/sdb_rpc.dir/server.cc.o.d"
  "libsdb_rpc.a"
  "libsdb_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
