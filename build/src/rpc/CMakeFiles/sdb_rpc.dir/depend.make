# Empty dependencies file for sdb_rpc.
# This may be replaced when dependencies are built.
