# Empty compiler generated dependencies file for sdb_nameserver.
# This may be replaced when dependencies are built.
