file(REMOVE_RECURSE
  "CMakeFiles/sdb_nameserver.dir/name_server.cc.o"
  "CMakeFiles/sdb_nameserver.dir/name_server.cc.o.d"
  "CMakeFiles/sdb_nameserver.dir/name_service_rpc.cc.o"
  "CMakeFiles/sdb_nameserver.dir/name_service_rpc.cc.o.d"
  "CMakeFiles/sdb_nameserver.dir/name_tree.cc.o"
  "CMakeFiles/sdb_nameserver.dir/name_tree.cc.o.d"
  "CMakeFiles/sdb_nameserver.dir/replication.cc.o"
  "CMakeFiles/sdb_nameserver.dir/replication.cc.o.d"
  "CMakeFiles/sdb_nameserver.dir/updates.cc.o"
  "CMakeFiles/sdb_nameserver.dir/updates.cc.o.d"
  "libsdb_nameserver.a"
  "libsdb_nameserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_nameserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
