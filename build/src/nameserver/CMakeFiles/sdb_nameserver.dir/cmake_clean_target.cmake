file(REMOVE_RECURSE
  "libsdb_nameserver.a"
)
