
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/adhoc_page_db.cc" "src/baselines/CMakeFiles/sdb_baselines.dir/adhoc_page_db.cc.o" "gcc" "src/baselines/CMakeFiles/sdb_baselines.dir/adhoc_page_db.cc.o.d"
  "/root/repo/src/baselines/smalldb_kv.cc" "src/baselines/CMakeFiles/sdb_baselines.dir/smalldb_kv.cc.o" "gcc" "src/baselines/CMakeFiles/sdb_baselines.dir/smalldb_kv.cc.o.d"
  "/root/repo/src/baselines/textfile_db.cc" "src/baselines/CMakeFiles/sdb_baselines.dir/textfile_db.cc.o" "gcc" "src/baselines/CMakeFiles/sdb_baselines.dir/textfile_db.cc.o.d"
  "/root/repo/src/baselines/wal_commit_db.cc" "src/baselines/CMakeFiles/sdb_baselines.dir/wal_commit_db.cc.o" "gcc" "src/baselines/CMakeFiles/sdb_baselines.dir/wal_commit_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pickle/CMakeFiles/sdb_pickle.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
