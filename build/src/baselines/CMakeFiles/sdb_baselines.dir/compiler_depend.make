# Empty compiler generated dependencies file for sdb_baselines.
# This may be replaced when dependencies are built.
