file(REMOVE_RECURSE
  "CMakeFiles/sdb_baselines.dir/adhoc_page_db.cc.o"
  "CMakeFiles/sdb_baselines.dir/adhoc_page_db.cc.o.d"
  "CMakeFiles/sdb_baselines.dir/smalldb_kv.cc.o"
  "CMakeFiles/sdb_baselines.dir/smalldb_kv.cc.o.d"
  "CMakeFiles/sdb_baselines.dir/textfile_db.cc.o"
  "CMakeFiles/sdb_baselines.dir/textfile_db.cc.o.d"
  "CMakeFiles/sdb_baselines.dir/wal_commit_db.cc.o"
  "CMakeFiles/sdb_baselines.dir/wal_commit_db.cc.o.d"
  "libsdb_baselines.a"
  "libsdb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
