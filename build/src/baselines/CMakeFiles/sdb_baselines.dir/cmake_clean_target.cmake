file(REMOVE_RECURSE
  "libsdb_baselines.a"
)
