
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cc" "src/core/CMakeFiles/sdb_core.dir/audit.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/audit.cc.o.d"
  "/root/repo/src/core/backup.cc" "src/core/CMakeFiles/sdb_core.dir/backup.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/backup.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/sdb_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/database.cc.o.d"
  "/root/repo/src/core/integrity.cc" "src/core/CMakeFiles/sdb_core.dir/integrity.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/integrity.cc.o.d"
  "/root/repo/src/core/log_format.cc" "src/core/CMakeFiles/sdb_core.dir/log_format.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/log_format.cc.o.d"
  "/root/repo/src/core/log_reader.cc" "src/core/CMakeFiles/sdb_core.dir/log_reader.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/log_reader.cc.o.d"
  "/root/repo/src/core/log_writer.cc" "src/core/CMakeFiles/sdb_core.dir/log_writer.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/log_writer.cc.o.d"
  "/root/repo/src/core/partitioned.cc" "src/core/CMakeFiles/sdb_core.dir/partitioned.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/partitioned.cc.o.d"
  "/root/repo/src/core/shared_log.cc" "src/core/CMakeFiles/sdb_core.dir/shared_log.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/shared_log.cc.o.d"
  "/root/repo/src/core/sue_lock.cc" "src/core/CMakeFiles/sdb_core.dir/sue_lock.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/sue_lock.cc.o.d"
  "/root/repo/src/core/version_store.cc" "src/core/CMakeFiles/sdb_core.dir/version_store.cc.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/version_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pickle/CMakeFiles/sdb_pickle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
