file(REMOVE_RECURSE
  "CMakeFiles/sdb_core.dir/audit.cc.o"
  "CMakeFiles/sdb_core.dir/audit.cc.o.d"
  "CMakeFiles/sdb_core.dir/backup.cc.o"
  "CMakeFiles/sdb_core.dir/backup.cc.o.d"
  "CMakeFiles/sdb_core.dir/database.cc.o"
  "CMakeFiles/sdb_core.dir/database.cc.o.d"
  "CMakeFiles/sdb_core.dir/integrity.cc.o"
  "CMakeFiles/sdb_core.dir/integrity.cc.o.d"
  "CMakeFiles/sdb_core.dir/log_format.cc.o"
  "CMakeFiles/sdb_core.dir/log_format.cc.o.d"
  "CMakeFiles/sdb_core.dir/log_reader.cc.o"
  "CMakeFiles/sdb_core.dir/log_reader.cc.o.d"
  "CMakeFiles/sdb_core.dir/log_writer.cc.o"
  "CMakeFiles/sdb_core.dir/log_writer.cc.o.d"
  "CMakeFiles/sdb_core.dir/partitioned.cc.o"
  "CMakeFiles/sdb_core.dir/partitioned.cc.o.d"
  "CMakeFiles/sdb_core.dir/shared_log.cc.o"
  "CMakeFiles/sdb_core.dir/shared_log.cc.o.d"
  "CMakeFiles/sdb_core.dir/sue_lock.cc.o"
  "CMakeFiles/sdb_core.dir/sue_lock.cc.o.d"
  "CMakeFiles/sdb_core.dir/version_store.cc.o"
  "CMakeFiles/sdb_core.dir/version_store.cc.o.d"
  "libsdb_core.a"
  "libsdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
