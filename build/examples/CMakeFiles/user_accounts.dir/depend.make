# Empty dependencies file for user_accounts.
# This may be replaced when dependencies are built.
