file(REMOVE_RECURSE
  "CMakeFiles/user_accounts.dir/user_accounts.cpp.o"
  "CMakeFiles/user_accounts.dir/user_accounts.cpp.o.d"
  "user_accounts"
  "user_accounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_accounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
