file(REMOVE_RECURSE
  "CMakeFiles/sdb_dump.dir/sdb_dump.cpp.o"
  "CMakeFiles/sdb_dump.dir/sdb_dump.cpp.o.d"
  "sdb_dump"
  "sdb_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
