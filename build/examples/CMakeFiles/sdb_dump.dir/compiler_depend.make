# Empty compiler generated dependencies file for sdb_dump.
# This may be replaced when dependencies are built.
