# Empty compiler generated dependencies file for nameserver_demo.
# This may be replaced when dependencies are built.
