file(REMOVE_RECURSE
  "CMakeFiles/nameserver_demo.dir/nameserver_demo.cpp.o"
  "CMakeFiles/nameserver_demo.dir/nameserver_demo.cpp.o.d"
  "nameserver_demo"
  "nameserver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nameserver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
