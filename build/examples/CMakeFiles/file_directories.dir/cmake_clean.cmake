file(REMOVE_RECURSE
  "CMakeFiles/file_directories.dir/file_directories.cpp.o"
  "CMakeFiles/file_directories.dir/file_directories.cpp.o.d"
  "file_directories"
  "file_directories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_directories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
