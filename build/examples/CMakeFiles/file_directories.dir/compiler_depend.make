# Empty compiler generated dependencies file for file_directories.
# This may be replaced when dependencies are built.
