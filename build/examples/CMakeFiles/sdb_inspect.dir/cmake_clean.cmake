file(REMOVE_RECURSE
  "CMakeFiles/sdb_inspect.dir/sdb_inspect.cpp.o"
  "CMakeFiles/sdb_inspect.dir/sdb_inspect.cpp.o.d"
  "sdb_inspect"
  "sdb_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
