# Empty compiler generated dependencies file for sdb_inspect.
# This may be replaced when dependencies are built.
